"""A media player SUO: the reproduction's MPlayer analogue.

Sect. 5: "the framework is used for awareness experiments with the open
source media player MPlayer, investigating both correctness and
performance issues."  This module provides an equivalent second System
Under Observation: a demux → decode → render pipeline driven by player
commands, with injectable correctness faults (a stall after a corrupt
packet) and performance faults (decoder slowdown), plus a small
specification model of the player's control behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process
from ..sim.resources import Store
from ..statemachine.builder import MachineBuilder
from ..statemachine.machine import Machine


@dataclass(frozen=True)
class Packet:
    """One demuxed media packet."""

    index: int
    pts: float
    corrupt: bool = False


class MediaSource:
    """A synthetic media file: packets at a fixed rate, some corrupt."""

    def __init__(
        self,
        packet_count: int = 500,
        packet_interval: float = 0.4,
        corrupt_indices: Optional[List[int]] = None,
    ) -> None:
        self.packet_count = packet_count
        self.packet_interval = packet_interval
        self.corrupt_indices = set(corrupt_indices or [])

    def packet(self, index: int) -> Packet:
        return Packet(
            index=index,
            pts=index * self.packet_interval,
            corrupt=index in self.corrupt_indices,
        )


class MediaPlayer:
    """The player: command API, pipeline processes, observables."""

    DECODE_TIME = 0.25
    RENDER_TIME = 0.05
    BUFFER_CAPACITY = 8

    def __init__(
        self, kernel: Kernel, source: MediaSource, suo_id: str = "player"
    ) -> None:
        self.kernel = kernel
        self.source = source
        self.suo_id = suo_id
        self._publish_output = kernel.bus.publisher(f"suo.{suo_id}.output")
        self._publish_command = kernel.bus.publisher(f"suo.{suo_id}.input")
        self.state = "stopped"
        self.position = 0.0
        self.frames_rendered = 0
        self.decode_slowdown = 1.0
        #: Correctness fault: when True, a corrupt packet wedges the
        #: decoder (it neither produces output nor skips the packet).
        self.stall_on_corrupt = False
        self.stalled = False
        self.output_hooks: List[Callable[[str, Any], None]] = []
        self._demux_index = 0
        self._packets: Optional[Store] = None
        self._frames: Optional[Store] = None
        self._processes: List[Process] = []

    # ------------------------------------------------------------------
    # command API (the player's input events)
    # ------------------------------------------------------------------
    def command(self, name: str, **params: Any) -> None:
        handler = getattr(self, f"_cmd_{name}", None)
        if handler is None:
            raise ValueError(f"unknown player command {name!r}")
        self._publish_command((name, params))
        handler(**params)
        self._publish("state", self.state)

    def _cmd_play(self) -> None:
        if self.state == "playing":
            return
        if self.state == "stopped":
            self._demux_index = int(self.position / self.source.packet_interval)
            self._start_pipeline()
        self.state = "playing"

    def _cmd_pause(self) -> None:
        if self.state == "playing":
            self.state = "paused"

    def _cmd_stop(self) -> None:
        self.state = "stopped"
        self.position = 0.0
        self._stop_pipeline()

    def _cmd_seek(self, position: float = 0.0) -> None:
        self.position = max(0.0, position)
        self._demux_index = int(self.position / self.source.packet_interval)
        if self._packets is not None:
            self._packets.clear()
        if self._frames is not None:
            self._frames.clear()
        self.stalled = False

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def _start_pipeline(self) -> None:
        self._packets = Store(self.kernel, self.BUFFER_CAPACITY, "packets")
        self._frames = Store(self.kernel, self.BUFFER_CAPACITY, "frames")
        self._processes = [
            Process(self.kernel, self._demux(), name="mp.demux"),
            Process(self.kernel, self._decode(), name="mp.decode"),
            Process(self.kernel, self._render(), name="mp.render"),
        ]

    def _stop_pipeline(self) -> None:
        for process in self._processes:
            if process.alive:
                process.kill("player stop")
        self._processes = []
        self._packets = None
        self._frames = None
        self.stalled = False

    def _demux(self) -> Generator[Any, Any, None]:
        try:
            while self._demux_index < self.source.packet_count:
                if self.state != "playing":
                    yield Delay(0.1)
                    continue
                packet = self.source.packet(self._demux_index)
                assert self._packets is not None
                if self._packets.put(packet):
                    self._demux_index += 1
                    yield Delay(self.source.packet_interval * 0.5)
                else:
                    yield Delay(0.05)  # buffer full, retry
        except Interrupted:
            return

    def _decode(self) -> Generator[Any, Any, None]:
        try:
            while True:
                assert self._packets is not None
                packet = yield self._packets.get()
                if packet.corrupt:
                    if self.stall_on_corrupt:
                        # The injected wedge: decoder spins forever.
                        self.stalled = True
                        while True:
                            yield Delay(1.0)
                    # Nominal behaviour: conceal the error and continue.
                    continue
                yield Delay(self.DECODE_TIME * self.decode_slowdown)
                assert self._frames is not None
                self._frames.put(packet)
        except Interrupted:
            return

    def _render(self) -> Generator[Any, Any, None]:
        try:
            while True:
                assert self._frames is not None
                frame = yield self._frames.get()
                if self.state != "playing":
                    yield Delay(0.1)
                    continue
                yield Delay(self.RENDER_TIME)
                self.frames_rendered += 1
                self.position = frame.pts
                self._publish("position", round(self.position, 3))
        except Interrupted:
            return

    # ------------------------------------------------------------------
    def _publish(self, name: str, value: Any) -> None:
        for hook in self.output_hooks:
            hook(name, value)
        self._publish_output((name, value))

    def throughput(self, window: float = 10.0) -> float:
        """Frames per time unit over the whole run (coarse)."""
        if self.kernel.now <= 0:
            return 0.0
        return self.frames_rendered / self.kernel.now


def build_player_model() -> Machine:
    """Specification model of the player's control behaviour."""
    b = MachineBuilder("player_spec")
    b.state("stopped")
    b.state("playing")
    b.state("paused")
    b.initial("stopped")
    b.transition("stopped", "playing", event="play")
    b.transition("playing", "paused", event="pause")
    b.transition("paused", "playing", event="play")
    b.transition("playing", "stopped", event="stop")
    b.transition("paused", "stopped", event="stop")
    b.transition("playing", None, event="seek", internal=True)
    b.transition("paused", None, event="seek", internal=True)
    b.transition("stopped", None, event="seek", internal=True)
    return b.build()


def expected_player_state(machine: Machine) -> str:
    """The control state the model predicts."""
    return machine.configuration().split(".")[-1]
