"""Teletext: a page acquirer and a renderer that must stay in sync.

This is the reproduction of the paper's flagship error-detection case
(Sect. 4.3, [17]): teletext failures caused by *loss of synchronization
between components*.  The :class:`TeletextAcquirer` continuously decodes
pages for the channel it believes is tuned; the :class:`TeletextRenderer`
displays pages for the channel the control logic believes is tuned.  Their
**modes** encode those beliefs (``acquiring:ch12``, ``visible:ch12``), so
a mode-consistency rule (see :mod:`repro.awareness.modes`) can detect the
fault where a channel-change notification is lost and the acquirer keeps
serving stale pages — the user sees wrong or frozen teletext while the
system itself notices nothing.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..koala.component import Component
from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process
from .interfaces import ITeletext


class TeletextAcquirer(Component):
    """Background page acquisition for the tuned channel."""

    PAGE_CYCLE = 1.5  # simulated seconds to capture one page
    PAGES_PER_CHANNEL = (100, 120)  # modest carousel for simulation

    def __init__(self, kernel: Kernel, name: str = "ttx_acq") -> None:
        self.kernel = kernel
        self._channel = 1
        #: (channel, page) -> capture time; the page cache.
        self.cache: Dict[Tuple[int, int], float] = {}
        self._process: Optional[Process] = None
        self._running = False
        #: Fault hook: when True, channel-change notifications are dropped.
        self.drop_channel_updates = False
        self.missed_updates = 0
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("idle")

    # ------------------------------------------------------------------
    def start_acquisition(self) -> None:
        if self._running:
            return
        self._running = True
        self.set_mode(f"acquiring:ch{self._channel}")
        self._process = Process(self.kernel, self._acquire_loop(), name=f"{self.name}.loop")

    def stop_acquisition(self) -> None:
        self._running = False
        if self._process is not None and self._process.alive:
            self._process.kill("ttx stop")
        self._process = None
        # The carousel memory is part of the acquisition context; stopping
        # releases it (a reopened teletext session re-acquires from air).
        self.cache.clear()
        self.set_mode("idle")

    def notify_channel(self, channel: int) -> None:
        """Control logic tells us the tuned channel changed.

        The injected synchronization fault makes this a no-op, which is
        precisely how the stale-teletext failure arises.
        """
        if self.drop_channel_updates:
            self.missed_updates += 1
            return
        if channel == self._channel:
            return
        self._channel = channel
        self.cache = {k: v for k, v in self.cache.items() if k[0] == channel}
        if self._running:
            self.set_mode(f"acquiring:ch{channel}")

    @property
    def believed_channel(self) -> int:
        return self._channel

    def has_page(self, channel: int, page: int) -> bool:
        return (channel, page) in self.cache

    # ------------------------------------------------------------------
    def _acquire_loop(self) -> Generator[Any, Any, None]:
        try:
            while self._running:
                yield Delay(self.PAGE_CYCLE)
                low, high = self.PAGES_PER_CHANNEL
                # Deterministic carousel: cycle pages low..high for the
                # channel we *believe* is tuned.
                acquired = low + (len(self.cache) % (high - low + 1))
                self.cache[(self._channel, acquired)] = self.kernel.now
        except Interrupted:
            return


class TeletextRenderer(Component):
    """Shows one teletext page, or 'searching' while it is not yet cached."""

    def __init__(self, acquirer: TeletextAcquirer, name: str = "ttx_rend") -> None:
        self.acquirer = acquirer
        self._visible = False
        self._channel = 1
        self._page = 100
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("hidden")

    # ------------------------------------------------------------------
    def show(self, channel: int, page: int) -> None:
        self._visible = True
        self._channel = channel
        self._page = page
        self.set_mode(f"visible:ch{channel}")

    def hide(self) -> None:
        self._visible = False
        self.set_mode("hidden")

    def select_page(self, page: int) -> None:
        self._page = page

    def rendered(self) -> Dict[str, Any]:
        """What the user sees in the teletext window."""
        if not self._visible:
            return {"visible": False}
        # The renderer asks the acquirer for the page *for the channel the
        # renderer believes is tuned*.  Under the sync-loss fault the
        # acquirer has cached pages for a different channel, so the lookup
        # misses forever and the user sees an endless 'searching'.
        if self.acquirer.has_page(self._channel, self._page):
            return {
                "visible": True,
                "channel": self._channel,
                "page": self._page,
                "status": "shown",
            }
        return {
            "visible": True,
            "channel": self._channel,
            "page": self._page,
            "status": "searching",
        }


class Teletext(Component):
    """Facade component offering ITeletext over acquirer + renderer."""

    def __init__(self, kernel: Kernel, name: str = "teletext") -> None:
        self.acquirer = TeletextAcquirer(kernel, name=f"{name}.acq")
        self.renderer = TeletextRenderer(self.acquirer, name=f"{name}.rend")
        self._channel = 1
        super().__init__(name)

    def configure(self) -> None:
        self.provide("ttx", ITeletext)
        self.set_mode("off")

    # ------------------------------------------------------------------
    def notify_channel(self, channel: int) -> None:
        self._channel = channel
        self.acquirer.notify_channel(channel)
        if self.renderer.mode.startswith("visible"):
            self.renderer.show(channel, self.renderer._page)

    # ------------------------------------------------------------------
    # ITeletext operations
    # ------------------------------------------------------------------
    def op_ttx_show(self, page: int = 100) -> None:
        self.acquirer.start_acquisition()
        self.renderer.show(self._channel, page)
        self.set_mode("on")

    def op_ttx_hide(self) -> None:
        self.renderer.hide()
        self.acquirer.stop_acquisition()
        self.set_mode("off")

    def op_ttx_select_page(self, page: int) -> None:
        self.renderer.select_page(page)

    def op_ttx_rendered_page(self) -> Dict[str, Any]:
        return self.renderer.rendered()

    def op_ttx_acquired_page(self) -> int:
        return len(self.acquirer.cache)

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def inject_sync_loss(self) -> None:
        """Activate the lost-notification fault of [17]."""
        self.acquirer.drop_channel_updates = True

    def repair_sync(self) -> None:
        """Recovery action: re-sync the acquirer to the true channel."""
        self.acquirer.drop_channel_updates = False
        self.acquirer.notify_channel(self._channel)

    def inject_stale_render(self) -> None:
        """Pin the renderer to a stale cache generation (the Sect. 4.4
        injected teletext error): visible pages report ``searching``
        forever instead of resolving."""
        renderer = self.renderer
        if getattr(renderer, "_nominal_rendered", None) is not None:
            return  # already injected
        original = renderer.rendered

        def stale_rendered():
            result = original()
            if result.get("visible"):
                result = dict(result)
                result["status"] = "searching"  # stale entry never resolves
                result["stale"] = True
            return result

        renderer._nominal_rendered = original
        renderer.rendered = stale_rendered

    def repair_stale_render(self) -> None:
        """Recovery action: restore the nominal renderer lookup."""
        original = getattr(self.renderer, "_nominal_rendered", None)
        if original is not None:
            self.renderer.rendered = original
            self.renderer._nominal_rendered = None
