"""Video pipeline: decode / error-correction / enhancement on the SoC.

The pipeline turns tuner signal into frames.  Its load model implements
the scenario behind the IMEC task-migration demo (Sect. 4.5): *bad input
signal → intensive error correction → processor overload → deadline misses
→ visibly degraded image quality*.  Frame quality is the observable the
output observer samples and the load balancer tries to protect.

Tasks created on the platform scheduler:

* ``<name>.decode``  — fixed work on the video accelerator;
* ``<name>.errcorr`` — work inversely proportional to signal quality, on a
  general-purpose core (this is the inflating load);
* ``<name>.enhance`` — fixed work on a general-purpose core; each completed
  enhance job delivers one frame.

In addition a **DMA loop** moves each frame over the shared bus and
through the memory arbiter; when bandwidth takeaway (Sect. 4.7) or memory
contention stretches a frame transfer beyond the frame period, the frame
is late and quality drops — this is how bus/memory stress becomes user
visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..koala.component import Component
from ..platform.soc import SoC
from ..platform.task import JobRecord, PeriodicTask
from ..sim.process import Delay, Interrupted, Process
from .interfaces import IVideo


@dataclass(frozen=True)
class Frame:
    """One delivered frame with its computed quality in [0, 1]."""

    time: float
    channel: int
    quality: float
    degraded: bool


class VideoPipeline(Component):
    """The picture path of the TV, mapped onto SoC tasks."""

    FRAME_PERIOD = 2.0
    DECODE_WORK = 3.0
    ENHANCE_WORK = 0.8
    ERRCORR_BASE_WORK = 0.2
    #: Error-correction work added per unit of missing signal quality.
    ERRCORR_GAIN = 2.0
    #: Frame-quality penalty per recent deadline miss rate unit.
    MISS_PENALTY = 0.8
    DEGRADED_THRESHOLD = 0.7
    #: Per-frame DMA footprint: bus transfer size and memory words.
    FRAME_DMA_SIZE = 100.0
    FRAME_MEM_WORDS = 200

    def __init__(
        self,
        soc: SoC,
        signal_quality_fn: Callable[[], float],
        name: str = "video",
        decode_processor: str = "vpu",
        cpu_processor: str = "cpu0",
    ) -> None:
        self.soc = soc
        self.signal_quality_fn = signal_quality_fn
        self.decode_processor = decode_processor
        self.cpu_processor = cpu_processor
        self._channel = 1
        self._pip_channel = 0
        self._blanked = True
        self.frames: List[Frame] = []
        self.on_frame: List[Callable[[Frame], None]] = []
        self._tasks: List[PeriodicTask] = []
        self._dma_process: Optional[Process] = None
        self._dma_late: List[bool] = []
        self._last_quality = 0.0
        super().__init__(name)

    def configure(self) -> None:
        self.provide("video", IVideo)
        self.set_mode("blanked")

    # ------------------------------------------------------------------
    # pipeline lifecycle
    # ------------------------------------------------------------------
    def start_pipeline(self) -> None:
        """Create the task set on the scheduler (idempotent)."""
        if self._tasks:
            return
        scheduler = self.soc.scheduler
        decode = scheduler.add_task(
            f"{self.name}.decode",
            self.decode_processor,
            period=self.FRAME_PERIOD,
            work=self.DECODE_WORK,
            priority=0,
            migration_cost=0.3,
        )
        errcorr = scheduler.add_task(
            f"{self.name}.errcorr",
            self.cpu_processor,
            period=self.FRAME_PERIOD,
            work=self.ERRCORR_BASE_WORK,
            work_fn=self._errcorr_work,
            priority=1,
            migration_cost=0.3,
        )
        enhance = scheduler.add_task(
            f"{self.name}.enhance",
            self.cpu_processor,
            period=self.FRAME_PERIOD,
            work=self.ENHANCE_WORK,
            priority=2,
            migration_cost=0.3,
        )
        enhance.on_job.append(self._deliver_frame)
        self._tasks = [decode, errcorr, enhance]
        self._dma_process = Process(
            self.soc.kernel, self._dma_loop(), name=f"{self.name}.dma"
        )

    def stop_pipeline(self) -> None:
        for task in self._tasks:
            self.soc.scheduler.remove_task(task.name)
        self._tasks = []
        if self._dma_process is not None and self._dma_process.alive:
            self._dma_process.kill("pipeline stop")
        self._dma_process = None

    def _dma_loop(self):
        """Move one frame per period over the bus and through memory."""
        try:
            while True:
                start = self.soc.kernel.now
                yield from self.soc.bus.transfer(self.name, self.FRAME_DMA_SIZE)
                yield from self.soc.arbiter.access(self.name, self.FRAME_MEM_WORDS)
                elapsed = self.soc.kernel.now - start
                self._dma_late.append(elapsed > self.FRAME_PERIOD)
                if len(self._dma_late) > 32:
                    self._dma_late.pop(0)
                if elapsed < self.FRAME_PERIOD:
                    yield Delay(self.FRAME_PERIOD - elapsed)
        except Interrupted:
            return

    def dma_late_rate(self, window: int = 10) -> float:
        """Fraction of recent frame transfers that overran the period."""
        recent = self._dma_late[-window:]
        if not recent:
            return 0.0
        return sum(recent) / len(recent)

    @property
    def tasks(self) -> List[PeriodicTask]:
        return list(self._tasks)

    def _errcorr_work(self) -> float:
        quality = self.signal_quality_fn()
        return self.ERRCORR_BASE_WORK + self.ERRCORR_GAIN * (1.0 - quality)

    # ------------------------------------------------------------------
    # frame delivery
    # ------------------------------------------------------------------
    def _deliver_frame(self, record: JobRecord) -> None:
        if self._blanked:
            return
        signal = self.signal_quality_fn()
        miss_rate = max(
            task.recent_miss_rate(window=10) for task in self._tasks
        )
        miss_rate = max(miss_rate, self.dma_late_rate())
        quality = max(0.0, min(1.0, signal * (1.0 - self.MISS_PENALTY * miss_rate)))
        frame = Frame(
            time=record.finish,
            channel=self._channel,
            quality=quality,
            degraded=quality < self.DEGRADED_THRESHOLD,
        )
        self._last_quality = quality
        self.frames.append(frame)
        for listener in self.on_frame:
            listener(frame)

    # ------------------------------------------------------------------
    # IVideo operations
    # ------------------------------------------------------------------
    def op_video_set_source(self, channel: int) -> None:
        self._channel = channel

    def op_video_set_pip(self, channel: int) -> None:
        """channel 0 disables picture-in-picture."""
        self._pip_channel = channel

    def op_video_blank(self) -> None:
        self._blanked = True
        self.set_mode("blanked")

    def op_video_unblank(self) -> None:
        self._blanked = False
        self.set_mode("active")
        self.start_pipeline()

    def op_video_frame_quality(self) -> float:
        return self._last_quality

    # ------------------------------------------------------------------
    # metrics for E4
    # ------------------------------------------------------------------
    def mean_quality(self, since: float = 0.0) -> float:
        relevant = [f.quality for f in self.frames if f.time >= since]
        if not relevant:
            return 0.0
        return sum(relevant) / len(relevant)

    def degraded_fraction(self, since: float = 0.0) -> float:
        relevant = [f for f in self.frames if f.time >= since]
        if not relevant:
            return 0.0
        return sum(1 for f in relevant if f.degraded) / len(relevant)
