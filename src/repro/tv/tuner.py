"""Tuner component: channel selection and signal quality.

The tuner is the boundary to the outside world — the source of the
*external faults* the paper insists products must tolerate ("deviations
from coding standards or bad image quality", Sect. 2).  Signal quality per
channel is a seeded stochastic process; bad signal raises the error-
correction workload of the video pipeline, which is exactly the overload
scenario of the IMEC task-migration demonstration (Sect. 4.5).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..koala.component import Component
from ..sim.random import RandomStreams
from .interfaces import ITuner


class Tuner(Component):
    """Simulated front-end: analog/digital tuner with per-channel quality."""

    def __init__(
        self,
        name: str = "tuner",
        streams: Optional[RandomStreams] = None,
        channel_count: int = 99,
    ) -> None:
        self._streams = streams or RandomStreams(0)
        self.channel_count = channel_count
        #: Channels with persistently degraded reception (externally set by
        #: experiments to model a bad antenna or noncompliant broadcast).
        self.degraded_channels: Dict[int, float] = {}
        self._channel = 1
        self._locked = True
        #: channel -> its named quality stream (same Random objects the
        #: per-call ``streams.stream(f"tuner:{ch}")`` lookup yields, so
        #: the draw sequence — and every digest over it — is unchanged).
        self._quality_streams: Dict[int, object] = {}
        super().__init__(name)

    def configure(self) -> None:
        self.provide("tuner", ITuner)
        self.set_mode("locked")

    # ------------------------------------------------------------------
    # ITuner operations
    # ------------------------------------------------------------------
    def op_tuner_tune(self, channel: int) -> bool:
        """Select a channel; lock takes effect immediately in simulation."""
        if not 1 <= channel <= self.channel_count:
            self._locked = False
            self.set_mode("unlocked")
            return False
        self._channel = channel
        self._locked = True
        self.set_mode("locked")
        return True

    def op_tuner_get_channel(self) -> int:
        return self._channel

    def op_tuner_is_locked(self) -> bool:
        return self._locked

    def op_tuner_signal_quality(self) -> float:
        """Instantaneous quality in [0, 1] for the current channel."""
        if not self._locked:
            return 0.0
        channel = self._channel
        base = self.degraded_channels.get(channel, 0.92)
        stream = self._quality_streams.get(channel)
        if stream is None:
            stream = self._quality_streams[channel] = self._streams.stream(
                f"tuner:{channel}"
            )
        quality = base + stream.gauss(0.0, 0.03)
        if quality < 0.0:
            return 0.0
        if quality > 1.0:
            return 1.0
        return quality

    # ------------------------------------------------------------------
    # experiment hooks
    # ------------------------------------------------------------------
    def degrade_channel(self, channel: int, base_quality: float) -> None:
        """Force a channel's mean quality (bad antenna / bad broadcast)."""
        if not 0.0 <= base_quality <= 1.0:
            raise ValueError("base quality must be in [0, 1]")
        self.degraded_channels[channel] = base_quality

    def restore_channel(self, channel: int) -> None:
        self.degraded_channels.pop(channel, None)

    def drop_lock(self) -> None:
        """Fault hook: lose tuner lock (sync loss toward teletext)."""
        self._locked = False
        self.set_mode("unlocked")

    def regain_lock(self) -> None:
        self._locked = True
        self.set_mode("locked")
