"""Remote control: the user-input boundary of the TV.

The awareness framework observes "key presses from the remote control"
(Sect. 3) as its primary input events.  :class:`RemoteControl` delivers
key presses into the TV and notifies input hooks — the "SUO modification"
of Fig. 2 that sends input events to the Input Observer.

:class:`KeySequence` provides scripted scenarios (the 27-key-press
scenario of Sect. 4.4 is such a script) and :class:`RandomUser` generates
seeded random zapping sessions for the stress and coverage experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process
from ..sim.random import RandomStreams

#: Every key the simulated remote can produce.
KEYS = (
    "power",
    "ch_up",
    "ch_down",
    "vol_up",
    "vol_down",
    "mute",
    "ttx",
    "menu",
    "back",
    "dual",
    "swap",
    "sleep",
    "epg",
    "ok",
    "lock",
) + tuple(f"digit{d}" for d in range(10))


@dataclass(frozen=True)
class KeyPress:
    """One delivered key press."""

    time: float
    key: str
    index: int


class RemoteControl:
    """Delivers key presses to a handler and mirrors them to observers.

    Observers attach either through the legacy ``input_hooks`` list or —
    when ``topic`` is given — through the kernel's runtime bus, which is
    how fleet-scale monitors watch many remotes without per-object wiring.
    """

    def __init__(
        self,
        kernel: Kernel,
        handler: Callable[[str], None],
        topic: Optional[str] = None,
    ) -> None:
        self.kernel = kernel
        self.handler = handler
        self.topic = topic
        self._publish = kernel.bus.publisher(topic) if topic else None
        self.presses: List[KeyPress] = []
        self.input_hooks: List[Callable[[KeyPress], None]] = []

    def press(self, key: str) -> KeyPress:
        """Press a key *now* (at current kernel time)."""
        if key not in KEYS:
            raise ValueError(f"unknown key {key!r}")
        press = KeyPress(self.kernel.now, key, len(self.presses))
        self.presses.append(press)
        for hook in self.input_hooks:
            hook(press)
        if self._publish is not None:
            self._publish(press)
        self.handler(key)
        return press

    def schedule_press(self, delay: float, key: str) -> None:
        """Press a key ``delay`` time units from now."""
        self.kernel.schedule(
            delay, lambda: self.press(key), name=f"key:{key}", transient=True
        )


class KeySequence:
    """A scripted scenario: keys pressed at a fixed cadence."""

    def __init__(
        self,
        remote: RemoteControl,
        keys: Sequence[str],
        interval: float = 5.0,
        start: float = 1.0,
    ) -> None:
        self.remote = remote
        self.keys = list(keys)
        self.interval = interval
        self.start = start

    def schedule(self) -> None:
        """Queue every key press on the kernel."""
        at = self.start
        for key in self.keys:
            self.remote.kernel.schedule(
                max(0.0, at - self.remote.kernel.now),
                (lambda k: (lambda: self.remote.press(k)))(key),
                name=f"seq:{key}",
                transient=True,
            )
            at += self.interval

    def press_times(self) -> List[float]:
        """The times at which the keys will be pressed."""
        return [self.start + i * self.interval for i in range(len(self.keys))]


class RandomUser:
    """A seeded random user zapping around (coverage/stress workloads)."""

    def __init__(
        self,
        remote: RemoteControl,
        streams: RandomStreams,
        stream_name: str = "user",
        mean_gap: float = 4.0,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        self.remote = remote
        self.rng = streams.stream(stream_name)
        self.mean_gap = mean_gap
        self.keys = list(keys) if keys is not None else list(KEYS)
        self._process: Optional[Process] = None
        self.pressed: List[str] = []

    def start(self) -> None:
        self._process = Process(
            self.remote.kernel, self._body(), name="random-user"
        )

    def stop(self) -> None:
        if self._process is not None and self._process.alive:
            self._process.kill("user left")

    def _body(self) -> Generator[Any, Any, None]:
        try:
            while True:
                yield Delay(self.rng.expovariate(1.0 / self.mean_gap))
                key = self.rng.choice(self.keys)
                self.pressed.append(key)
                self.remote.press(key)
        except Interrupted:
            return
