"""On-screen display stack with suppression rules.

Sect. 4.2 singles out "relations between dual screen, teletext and various
types of on-screen displays that remove or suppress each other" as the
feature interactions that made modeling hard.  The OSD component owns
those rules for the implementation side: one overlay is visible at a time,
with a priority order and re-activation behaviour that the specification
model must match.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..koala.component import Component
from .interfaces import IOsd

#: Overlay kinds in increasing display priority; an overlay can replace
#: any overlay of lower or equal priority, except ALERT which beats all
#: and cannot be replaced while active.
OVERLAY_PRIORITY = {
    "none": 0,
    "volume_bar": 1,
    "info_banner": 1,
    "epg": 2,
    "menu": 3,
    "ttx": 3,
    "alert": 9,
}


class Osd(Component):
    """Single-slot overlay arbiter."""

    def __init__(self, name: str = "osd") -> None:
        self._overlay = "none"
        self.on_change: List[Callable[[str], None]] = []
        super().__init__(name)

    def configure(self) -> None:
        self.provide("osd", IOsd)
        self.set_mode("none")

    # ------------------------------------------------------------------
    def op_osd_show_overlay(self, kind: str) -> bool:
        """Request an overlay; returns True if it became visible."""
        if kind not in OVERLAY_PRIORITY:
            raise ValueError(f"unknown overlay kind {kind!r}")
        current = self._overlay
        if current == "alert" and kind != "alert":
            return False
        if OVERLAY_PRIORITY[kind] < OVERLAY_PRIORITY.get(current, 0):
            return False
        self._set(kind)
        return True

    def op_osd_hide_overlay(self, kind: Optional[str] = None) -> None:
        """Hide the current overlay (or only ``kind`` if it matches)."""
        if kind is not None and self._overlay != kind:
            return
        self._set("none")

    def op_osd_current_overlay(self) -> str:
        return self._overlay

    # ------------------------------------------------------------------
    def _set(self, kind: str) -> None:
        if kind == self._overlay:
            return
        self._overlay = kind
        self.set_mode(kind)
        for listener in self.on_change:
            listener(kind)
