"""The TV's *specification model*: desired behaviour from the user's view.

Sect. 4.2: "we have developed a high-level model of a TV from the
viewpoint of the user.  It captures the relation between user input, via
the remote control, and output, via images on the screen and sound."

This module builds that model as an executable timed state machine.  The
awareness framework's Model Executor (Fig. 2) feeds it the observed key
presses; :func:`expected_screen` / :func:`expected_sound` compute the
observables the Comparator matches against the real TV's outputs.

The model is deliberately *partial* (Sect. 3): it covers the control
behaviour — power, channels, volume, overlays, dual screen, child lock —
and abstracts from streaming internals and long-horizon timers (sleep
countdown).  Timing it does model: transient-overlay dismissal and the
teletext searching→shown latency, because both are user-visible within
the comparator's window.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

from ..statemachine.builder import MachineBuilder
from ..statemachine.machine import Machine

VOLUME_STEP = 5
VOLUME_BAR_TIMEOUT = 2.0
INFO_BANNER_TIMEOUT = 2.0
TTX_ACQUIRE_TIME = 1.6
SLEEP_STEPS = [0, 15, 30, 60, 90, 0]

#: States from which a channel change is accepted (menu blocks, alert keeps
#: its overlay but still changes channel — mirroring the implementation).
_CHANNEL_SOURCES = ("viewing", "volbar", "banner", "epg", "ttx_searching", "ttx_shown")
_VOLUME_BAR_SOURCES = ("viewing", "volbar", "banner")
_TTX_STATES = ("ttx_searching", "ttx_shown")


def _target_channel(machine: Machine, event) -> int:
    """Resolve the channel a key press aims at."""
    count = machine.get("channel_count")
    current = machine.get("channel")
    name = event.name
    if name == "ch_up":
        target = current + 1
        return 1 if target > count else target
    if name == "ch_down":
        target = current - 1
        return count if target < 1 else target
    if name == "digit":
        digit = event.param("n", 0)
        return digit if digit >= 1 else 10
    raise ValueError(f"not a channel event: {name}")


def _is_locked(machine: Machine, event) -> bool:
    target = _target_channel(machine, event)
    return machine.get("lock_enabled") and target in machine.get("locked")


def _set_channel(machine: Machine, event) -> None:
    machine.set("channel", _target_channel(machine, event))


def _adjust_volume(machine: Machine, event) -> None:
    delta = VOLUME_STEP if event.name == "vol_up" else -VOLUME_STEP
    machine.set("volume", max(0, min(100, machine.get("volume") + delta)))


def _toggle_mute(machine: Machine, event) -> None:
    machine.set("mute", not machine.get("mute"))


def _toggle_dual(machine: Machine, event) -> None:
    if machine.get("dual"):
        machine.set("dual", False)
        machine.set("pip", 0)
    else:
        count = machine.get("channel_count")
        pip = machine.get("channel") + 1
        if pip > count:
            pip = 1
        machine.set("dual", True)
        machine.set("pip", pip)


def _swap(machine: Machine, event) -> None:
    main = machine.get("channel")
    machine.set("channel", machine.get("pip"))
    machine.set("pip", main)


def _exit_dual(machine: Machine, event) -> None:
    machine.set("dual", False)
    machine.set("pip", 0)


def _cycle_sleep(machine: Machine, event) -> None:
    current = machine.get("sleep")
    try:
        index = SLEEP_STEPS.index(current)
    except ValueError:
        index = 0
    machine.set("sleep", SLEEP_STEPS[(index + 1) % len(SLEEP_STEPS)])


def _toggle_lock(machine: Machine, event) -> None:
    machine.set("lock_enabled", not machine.get("lock_enabled"))


def build_tv_model(
    channel_count: int = 99,
    locked_channels: Optional[FrozenSet[int]] = None,
    initial_channel: int = 1,
    initial_volume: int = 30,
) -> Machine:
    """Construct and initialize the TV specification model."""
    b = MachineBuilder("tv_spec")
    b.var("channel", initial_channel)
    b.var("channel_count", channel_count)
    b.var("volume", initial_volume)
    b.var("mute", False)
    b.var("dual", False)
    b.var("pip", 0)
    b.var("lock_enabled", False)
    b.var("locked", frozenset(locked_channels or frozenset()))
    b.var("sleep", 0)

    b.state("standby")
    b.state("on", initial="viewing")
    for name in (
        "viewing",
        "volbar",
        "banner",
        "menu",
        "epg",
        "alert",
    ):
        b.state(name, parent="on")
    b.state("ttx", parent="on", initial="ttx_searching")
    b.state("ttx_searching", parent="ttx")
    b.state("ttx_shown", parent="ttx")
    b.initial("standby")

    # power ------------------------------------------------------------
    b.transition("standby", "on", event="power")
    b.transition("on", "standby", event="power", action=_exit_dual)

    # global (anywhere on): mute, alert broadcast ----------------------
    b.transition("on", None, event="mute", action=_toggle_mute, internal=True)
    b.transition("on", "alert", event="alert_broadcast")

    # channel changes ----------------------------------------------------
    for src in _CHANNEL_SOURCES:
        for ev in ("ch_up", "ch_down", "digit"):
            b.transition(
                src,
                "viewing",
                event=ev,
                guard=lambda m, e: not _is_locked(m, e),
                action=_set_channel,
                name=f"{src}-{ev}-ok",
            )
            b.transition(
                src,
                "banner",
                event=ev,
                guard=_is_locked,
                name=f"{src}-{ev}-locked",
            )
    # channel change while alert showing: channel changes, alert stays.
    for ev in ("ch_up", "ch_down", "digit"):
        b.transition(
            "alert",
            None,
            event=ev,
            guard=lambda m, e: not _is_locked(m, e),
            action=_set_channel,
            internal=True,
            name=f"alert-{ev}",
        )

    # volume -------------------------------------------------------------
    for src in _VOLUME_BAR_SOURCES:
        for ev in ("vol_up", "vol_down"):
            b.transition(src, "volbar", event=ev, action=_adjust_volume)
    # Volume also works under overlays that outrank the volume bar: the
    # implementation blocks volume only in the menu, so teletext, the
    # programme guide, *and an active alert* adjust it without showing
    # the bar (alert was a model omission — found by the alert-flood
    # scenario: expected sound stayed put while the set got louder).
    for src in _TTX_STATES + ("epg", "alert"):
        for ev in ("vol_up", "vol_down"):
            b.transition(src, None, event=ev, action=_adjust_volume, internal=True)
    b.transition("volbar", "viewing", after=VOLUME_BAR_TIMEOUT)
    b.transition("banner", "viewing", after=INFO_BANNER_TIMEOUT)

    # teletext -----------------------------------------------------------
    # epg is a ttx source too: the TV opens teletext over the programme
    # guide, mirroring menu→ttx and the reverse ttx→epg transition (the
    # seed model omitted it — found by the lockstep fuzz property with
    # the key sequence power, epg, ttx).
    for src in _VOLUME_BAR_SOURCES + ("menu", "epg"):
        b.transition(src, "ttx", event="ttx", action=_exit_dual)
    for src in _TTX_STATES:
        b.transition(src, "viewing", event="ttx")
        b.transition(src, "menu", event="menu")
        b.transition(src, "epg", event="epg")
        b.transition(src, "viewing", event="back")
    b.transition("ttx_searching", "ttx_shown", after=TTX_ACQUIRE_TIME)

    # menu / epg ----------------------------------------------------------
    for src in _VOLUME_BAR_SOURCES:
        b.transition(src, "menu", event="menu")
        b.transition(src, "epg", event="epg")
    b.transition("menu", "viewing", event="menu")
    b.transition("menu", "viewing", event="back")
    b.transition("epg", "viewing", event="epg")
    b.transition("epg", "viewing", event="back")
    # menu opens over the programme guide (the reverse is blocked: the
    # menu suppresses epg) — seed model omission found by the lockstep
    # fuzz property (power, epg, menu).
    b.transition("epg", "menu", event="menu")
    b.transition("volbar", "viewing", event="back")
    b.transition("banner", "viewing", event="back")

    # dual screen ----------------------------------------------------------
    for src in _VOLUME_BAR_SOURCES:
        b.transition(src, None, event="dual", action=_toggle_dual, internal=True)
        b.transition(
            src,
            None,
            event="swap",
            guard=lambda m, e: m.get("dual"),
            action=_swap,
            internal=True,
        )

    # swap has no overlay precondition in the implementation: as long as
    # dual screen is active it exchanges main and PiP, even under the
    # menu/epg/alert overlays (seed model omission; lockstep fuzz found
    # power, dual, menu, swap).
    for src in ("menu", "epg", "alert"):
        b.transition(
            src,
            None,
            event="swap",
            guard=lambda m, e: m.get("dual"),
            action=_swap,
            internal=True,
        )

    # sleep / lock ----------------------------------------------------------
    for src in _VOLUME_BAR_SOURCES:
        b.transition(src, "banner", event="sleep", action=_cycle_sleep)
        b.transition(src, "banner", event="lock", action=_toggle_lock)
    for src in _TTX_STATES + ("menu", "epg", "alert"):
        b.transition(src, None, event="sleep", action=_cycle_sleep, internal=True)
        b.transition(src, None, event="lock", action=_toggle_lock, internal=True)

    # alert dismissal -------------------------------------------------------
    b.transition("alert", "viewing", event="ok")

    return b.build()


# ----------------------------------------------------------------------
# expected observables
# ----------------------------------------------------------------------
_OVERLAY_BY_STATE = {
    "viewing": "none",
    "volbar": "volume_bar",
    "banner": "info_banner",
    "menu": "menu",
    "epg": "epg",
    "alert": "alert",
    "ttx_searching": "ttx",
    "ttx_shown": "ttx",
}


def expected_screen(machine: Machine) -> Dict[str, Any]:
    """The screen descriptor the model predicts right now."""
    active = machine.active
    leaf = active.name if active is not None else "(uninitialized)"
    if leaf == "standby":
        return {"power": False, "content": "dark", "overlay": "none"}
    overlay = _OVERLAY_BY_STATE.get(leaf, "none")
    descriptor: Dict[str, Any] = {
        "power": True,
        "content": "dual" if machine.get("dual") else "video",
        "overlay": overlay,
        "channel": machine.get("channel"),
    }
    if machine.get("dual"):
        descriptor["pip_channel"] = machine.get("pip")
    if overlay == "ttx":
        descriptor["ttx_status"] = (
            "shown" if leaf == "ttx_shown" else "searching"
        )
        descriptor["ttx_page"] = 100
    return descriptor


def expected_sound(machine: Machine) -> int:
    """The sound level the model predicts right now."""
    active = machine.active
    leaf = active.name if active is not None else "(uninitialized)"
    if leaf == "standby" or machine.get("mute"):
        return 0
    return machine.get("volume")


#: Events the model understands; used by checker/testgen alphabets.
MODEL_EVENTS = (
    "power",
    "ch_up",
    "ch_down",
    "digit",
    "vol_up",
    "vol_down",
    "mute",
    "ttx",
    "menu",
    "back",
    "dual",
    "swap",
    "sleep",
    "epg",
    "ok",
    "lock",
    "alert_broadcast",
)


def key_to_event_name(key: str) -> tuple:
    """Map a remote key name to (model event name, params)."""
    if key.startswith("digit"):
        return "digit", {"n": int(key[5:])}
    return key, {}
