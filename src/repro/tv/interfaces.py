"""Interface catalogue of the simulated TV.

One place for every Koala interface type used by the TV composition, so
components and the awareness configuration agree on operation names and
value ranges.  The declared numeric ranges double as the configuration of
the hardware range checkers (Sect. 4.1).
"""

from __future__ import annotations

from ..koala.interface import InterfaceType

#: Remote-control key events enter the system here.
IKeyInput = (
    InterfaceType("IKeyInput")
    .operation("press")
)

#: Tuner control and status.
ITuner = (
    InterfaceType("ITuner")
    .operation("tune", ranges={"channel": (1, 999)})
    .operation("get_channel", result_range=(1, 999))
    .operation("signal_quality", result_range=(0.0, 1.0))
    .operation("is_locked")
)

#: Audio output control.
IAudio = (
    InterfaceType("IAudio")
    .operation("set_volume", ranges={"level": (0, 100)})
    .operation("get_volume", result_range=(0, 100))
    .operation("set_mute")
    .operation("effective_level", result_range=(0, 100))
)

#: Video path control.
IVideo = (
    InterfaceType("IVideo")
    .operation("set_source", ranges={"channel": (0, 999)})
    .operation("set_pip", ranges={"channel": (0, 999)})
    .operation("blank")
    .operation("unblank")
    .operation("frame_quality", result_range=(0.0, 1.0))
)

#: Teletext acquisition and rendering.
ITeletext = (
    InterfaceType("ITeletext")
    .operation("show", ranges={"page": (100, 899)})
    .operation("hide")
    .operation("select_page", ranges={"page": (100, 899)})
    .operation("rendered_page")
    .operation("acquired_page")
)

#: On-screen display stack.
IOsd = (
    InterfaceType("IOsd")
    .operation("show_overlay")
    .operation("hide_overlay")
    .operation("current_overlay")
)

#: Screen composition (what the user actually sees).
IScreen = (
    InterfaceType("IScreen")
    .operation("compose")
    .operation("describe")
)

#: Extra features (child lock, sleep timer, alerts, EPG).
IFeatures = (
    InterfaceType("IFeatures")
    .operation("set_sleep", ranges={"minutes": (0, 180)})
    .operation("get_sleep", result_range=(0, 180))
    .operation("toggle_lock")
    .operation("is_locked_channel", ranges={"channel": (1, 999)})
    .operation("raise_alert")
    .operation("clear_alert")
    .operation("alert_active")
)
