"""The simulated TV domain: the System Under Observation."""

from .audio import Audio
from .control_model import (
    MODEL_EVENTS,
    build_tv_model,
    expected_screen,
    expected_sound,
    key_to_event_name,
)
from .dualscreen import DualScreen
from .faults import FaultInjector, FaultSpec
from .features import Features
from .mediaplayer import (
    MediaPlayer,
    MediaSource,
    Packet,
    build_player_model,
    expected_player_pace,
    expected_player_position,
    expected_player_progressing,
    expected_player_state,
)
from .osd import Osd
from .remote import KEYS, KeyPress, KeySequence, RandomUser, RemoteControl
from .software import Module, SoftwareBuild
from .teletext import Teletext, TeletextAcquirer, TeletextRenderer
from .tuner import Tuner
from .tvset import ControlLogic, OutputEvent, TVSet
from .video import Frame, VideoPipeline

__all__ = [
    "Audio",
    "ControlLogic",
    "DualScreen",
    "FaultInjector",
    "FaultSpec",
    "Features",
    "Frame",
    "KEYS",
    "KeyPress",
    "KeySequence",
    "MODEL_EVENTS",
    "MediaPlayer",
    "MediaSource",
    "Module",
    "Osd",
    "OutputEvent",
    "Packet",
    "RandomUser",
    "RemoteControl",
    "SoftwareBuild",
    "Teletext",
    "TeletextAcquirer",
    "TeletextRenderer",
    "Tuner",
    "TVSet",
    "VideoPipeline",
    "build_player_model",
    "build_tv_model",
    "expected_player_pace",
    "expected_player_position",
    "expected_player_progressing",
    "expected_player_state",
    "expected_screen",
    "expected_sound",
    "key_to_event_name",
]
