"""Convenience features: child lock, sleep timer, emergency alerts, EPG.

These are the long-tail features whose sheer number drives the complexity
argument of Sect. 2 (sleep timer, child lock, TV ratings, emergency
alerts, TV guide).  They are deliberately implemented as one component
with small, independent feature blocks — the realistic shape that invites
feature-interaction faults.
"""

from __future__ import annotations

from typing import Callable, List, Set

from ..koala.component import Component
from ..sim.kernel import Kernel
from .interfaces import IFeatures

#: Sleep-timer cycle order when the user repeatedly presses SLEEP.
SLEEP_STEPS = [0, 15, 30, 60, 90, 0]


class Features(Component):
    """Child lock, sleep timer, emergency alerts, and the programme guide."""

    def __init__(self, kernel: Kernel, name: str = "features") -> None:
        self.kernel = kernel
        self._sleep_minutes = 0
        self._sleep_event = None
        self._lock_enabled = False
        self.locked_channels: Set[int] = set()
        self._alert = False
        self.on_sleep_expire: List[Callable[[], None]] = []
        #: One simulated minute in kernel time units (frames are ~2 units,
        #: so 60 units/minute keeps the scales plausible).
        self.time_per_minute = 60.0
        super().__init__(name)

    def configure(self) -> None:
        self.provide("features", IFeatures)
        self.set_mode("normal")

    # ------------------------------------------------------------------
    # sleep timer
    # ------------------------------------------------------------------
    def op_features_set_sleep(self, minutes: int) -> int:
        """Arm (or disarm with 0) the sleep timer."""
        if minutes < 0 or minutes > 180:
            raise ValueError("sleep minutes out of range")
        self._sleep_minutes = minutes
        if self._sleep_event is not None:
            self._sleep_event.cancel()
            self._sleep_event = None
        if minutes > 0:
            self._sleep_event = self.kernel.schedule(
                minutes * self.time_per_minute, self._expire_sleep, name="sleep"
            )
        return minutes

    def cycle_sleep(self) -> int:
        """User pressed SLEEP: advance along the step cycle."""
        try:
            index = SLEEP_STEPS.index(self._sleep_minutes)
        except ValueError:
            index = 0
        next_minutes = SLEEP_STEPS[(index + 1) % len(SLEEP_STEPS)]
        return self.op_features_set_sleep(next_minutes)

    def op_features_get_sleep(self) -> int:
        return self._sleep_minutes

    def _expire_sleep(self) -> None:
        self._sleep_minutes = 0
        self._sleep_event = None
        for listener in self.on_sleep_expire:
            listener()

    # ------------------------------------------------------------------
    # child lock
    # ------------------------------------------------------------------
    def op_features_toggle_lock(self) -> bool:
        self._lock_enabled = not self._lock_enabled
        self.set_mode("locked" if self._lock_enabled else "normal")
        return self._lock_enabled

    def lock_channel(self, channel: int) -> None:
        self.locked_channels.add(channel)

    def unlock_channel(self, channel: int) -> None:
        self.locked_channels.discard(channel)

    def op_features_is_locked_channel(self, channel: int) -> bool:
        """A channel is blocked when the lock is on and it is in the list."""
        return self._lock_enabled and channel in self.locked_channels

    # ------------------------------------------------------------------
    # emergency alerts
    # ------------------------------------------------------------------
    def op_features_raise_alert(self) -> None:
        self._alert = True

    def op_features_clear_alert(self) -> None:
        self._alert = False

    def op_features_alert_active(self) -> bool:
        return self._alert
