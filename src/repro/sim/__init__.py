"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.kernel.Kernel` — event queue + simulated clock.
* :class:`~repro.sim.process.Process` and the wait requests
  (:class:`~repro.sim.process.Delay`,
  :class:`~repro.sim.process.WaitSignal`,
  :class:`~repro.sim.process.Signal`).
* :class:`~repro.sim.resources.Resource` /
  :class:`~repro.sim.resources.Store` — contended resources and buffers.
* :class:`~repro.sim.random.RandomStreams` — seeded named RNG streams.
* :class:`~repro.sim.trace.Trace` — time-stamped observation recording.
"""

from .kernel import DISPATCH_TOPIC, Event, Kernel, SimulationError
from .process import Delay, Interrupted, Process, Signal, WaitSignal
from .random import RandomStreams
from .resources import Acquire, Resource, ResourceStats, Store
from .trace import Trace, TraceRecord

__all__ = [
    "Acquire",
    "DISPATCH_TOPIC",
    "Delay",
    "Event",
    "Interrupted",
    "Kernel",
    "Process",
    "RandomStreams",
    "Resource",
    "ResourceStats",
    "Signal",
    "SimulationError",
    "Store",
    "Trace",
    "TraceRecord",
    "WaitSignal",
]
