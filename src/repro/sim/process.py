"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator yields *wait
requests* and the kernel resumes it when the request is satisfied:

* ``yield Delay(t)``           — sleep for ``t`` simulated time units;
* ``yield WaitSignal(sig)``    — block until the signal fires;
* ``yield Acquire(resource)``  — block until the resource grants a unit
                                 (see :mod:`repro.sim.resources`);
* ``yield proc``               — block until another process terminates.

This mirrors how the paper's SUO software is structured: concurrently
executing components (tuner driver, teletext acquirer, OSD renderer) that
block on messages and timers.  Processes can be interrupted — the recovery
manager in :mod:`repro.recovery` kills and restarts *recoverable units* by
interrupting their processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from .kernel import Kernel, SimulationError


class Interrupted(Exception):
    """Thrown into a process generator when it is killed or interrupted."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(slots=True)
class Delay:
    """Wait request: resume after ``duration`` simulated time units."""

    duration: float


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(value)`` wakes every waiter, passing ``value`` as the result of
    their ``yield``.  Signals are the kernel-level primitive under message
    channels and interrupt lines.
    """

    __slots__ = ("name", "_waiters", "fire_count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0

    def fire(self, value: Any = None) -> int:
        """Wake all waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)
        self.fire_count += 1
        return len(waiters)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)


@dataclass(slots=True)
class WaitSignal:
    """Wait request: resume when ``signal`` fires."""

    signal: Signal


class Process:
    """A simulated thread of control driven by the kernel.

    The process starts automatically on construction (scheduled at the
    current time).  ``alive`` is False once the generator returns, raises,
    or is killed.  ``result`` holds the generator's return value.

    Delay wake-ups are the single most common event in a fleet campaign
    (every periodic task body sleeps between jobs), so the process keeps
    one reusable wake callback and its timer events are *transient*
    (kernel freelist reuse): :meth:`_resume` drops ``_pending_event``
    before touching the generator, and :meth:`interrupt` only cancels
    still-pending timers, so no reference outlives the dispatch.
    """

    __slots__ = (
        "kernel", "name", "generator", "alive", "result", "exception",
        "_on_exit", "_exit_watchers", "_pending_event", "_waiting_signal",
        "_wake", "_wake_name",
    )

    def __init__(
        self,
        kernel: Kernel,
        generator: Generator[Any, Any, Any],
        name: str = "process",
        on_exit: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.generator = generator
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._on_exit = on_exit
        self._exit_watchers: List[Process] = []
        self._pending_event = None
        self._waiting_signal: Optional[Signal] = None
        self._wake: Callable[[], None] = lambda: self._resume(None)
        self._wake_name = f"wake:{name}"
        kernel.schedule(0.0, self._wake, name=f"start:{name}", transient=True)

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_signal = None
        try:
            request = self.generator.send(value)
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None))
            return
        except Interrupted as interrupt:
            self._finish(exception=interrupt)
            return
        except Exception as exc:  # simulated software fault escaping a unit
            self._finish(exception=exc)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, Delay):
            self._pending_event = self.kernel.schedule(
                request.duration, self._wake, name=self._wake_name,
                transient=True,
            )
            return
        if isinstance(request, WaitSignal):
            self._waiting_signal = request.signal
            request.signal._add_waiter(self)
            return
        if isinstance(request, Process):
            if not request.alive:
                self.kernel.schedule(0.0, lambda: self._resume(request.result))
            else:
                request._exit_watchers.append(self)
            return
        # Acquire requests are handled by the resource itself (duck-typed so
        # sim.resources does not import this module circularly).
        handler = getattr(request, "_submit", None)
        if handler is not None:
            handler(self)
            return
        raise SimulationError(f"process {self.name} yielded unsupported request {request!r}")

    def _finish(self, result: Any = None, exception: Optional[BaseException] = None) -> None:
        self.alive = False
        self.result = result
        self.exception = exception
        watchers, self._exit_watchers = self._exit_watchers, []
        for watcher in watchers:
            watcher._resume(result)
        if self._on_exit is not None:
            self._on_exit(self)

    # ------------------------------------------------------------------
    def interrupt(self, reason: str = "") -> None:
        """Throw :class:`Interrupted` into the process at its wait point.

        Used by the recovery manager to kill recoverable units.  A process
        that is mid-dispatch cannot be interrupted synchronously; the
        interrupt lands at its next suspension, matching the paper's
        observation that recovery actions operate at unit boundaries.
        """
        if not self.alive:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None:
            self._waiting_signal._remove_waiter(self)
            self._waiting_signal = None
        try:
            request = self.generator.throw(Interrupted(reason))
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None))
            return
        except Interrupted as interrupt:
            self._finish(exception=interrupt)
            return
        except Exception as exc:
            self._finish(exception=exc)
            return
        self._handle_request(request)

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process unconditionally (recovery 'kill' action)."""
        if not self.alive:
            return
        self.interrupt(reason)
        if self.alive:
            # The generator swallowed the interrupt and kept running; close
            # it hard.  This models a non-cooperative unit.
            self.generator.close()
            self._finish(exception=Interrupted(reason))
