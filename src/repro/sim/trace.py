"""Simulation trace recording.

The paper (Sect. 4.1) exploits the on-chip debug and trace infrastructure
to observe the system without modifying it.  :class:`Trace` is our
simulation-level analogue: a time-stamped, append-only record of named
observations that monitors can subscribe to or query after the fact.

Traces double as the data source for program spectra (Sect. 4.4): the
block instrumentation emits ``block:<id>`` records that the diagnosis
package folds into hit spectra per scenario step.

Live distribution rides the runtime :class:`~repro.runtime.bus.EventBus`
when one is attached: every record is published on ``<name>.record`` and
on the per-kind topic ``<name>.record.<kind>``, so a monitor interested
only in ``mode`` records never sees ``block:*`` traffic.  Without a bus
the trace keeps a private subscriber list, and either way an unobserved
``emit`` costs only the append plus empty-lookup checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..runtime.bus import EventBus, Subscription


@dataclass(frozen=True)
class TraceRecord:
    """One observation: at ``time``, ``source`` reported ``kind``/``value``."""

    time: float
    source: str
    kind: str
    value: Any = None


class Trace:
    """Append-only trace with live subscribers and post-hoc queries."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        bus: Optional[EventBus] = None,
        name: str = "trace",
    ) -> None:
        self.records: List[TraceRecord] = []
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._bus = bus
        self._topic_all = f"{name}.record"
        self._kind_topics: Dict[str, str] = {}
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        #: (id(callback), kind) -> live bus subscriptions; the kind is
        #: part of the key so one callback may watch several kinds and
        #: detach them independently, and repeated registrations stack
        #: like the legacy subscriber list did.
        self._bus_subs: Dict[tuple, List[Subscription]] = {}
        self._kind_index: Dict[str, List[int]] = {}

    def emit(self, source: str, kind: str, value: Any = None) -> TraceRecord:
        """Record an observation at the current simulated time."""
        record = TraceRecord(self._clock(), source, kind, value)
        index = self._kind_index.get(kind)
        if index is None:
            index = self._kind_index[kind] = []
        index.append(len(self.records))
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        bus = self._bus
        if bus is not None:
            bus.publish(self._topic_all, record)
            topic = self._kind_topics.get(kind)
            if topic is None:
                topic = self._kind_topics[kind] = f"{self._topic_all}.{kind}"
            bus.publish(topic, record)
        return record

    # ------------------------------------------------------------------
    # live subscription
    # ------------------------------------------------------------------
    def subscribe(
        self, callback: Callable[[TraceRecord], None], kind: Optional[str] = None
    ) -> None:
        """Register a live subscriber invoked on every future record.

        With ``kind`` (bus-attached traces only) the subscriber sees only
        records of that kind, via the per-kind bus topic.
        """
        if self._bus is not None:
            topic = self._topic_all if kind is None else f"{self._topic_all}.{kind}"
            sub = self._bus.subscribe(
                topic, lambda _topic, record, _cb=callback: _cb(record)
            )
            self._bus_subs.setdefault((id(callback), kind), []).append(sub)
            return
        if kind is not None:
            raise ValueError("per-kind subscription requires a bus-attached Trace")
        self._subscribers.append(callback)

    def unsubscribe(
        self, callback: Callable[[TraceRecord], None], kind: Optional[str] = None
    ) -> None:
        """Detach one registration of ``callback`` (matching ``kind``)."""
        if self._bus is not None:
            key = (id(callback), kind)
            subs = self._bus_subs.get(key)
            if subs:
                subs.pop().cancel()
                if not subs:
                    del self._bus_subs[key]
            return
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """All records of one kind, in time order."""
        for index in self._kind_index.get(kind, []):
            yield self.records[index]

    def between(self, start: float, end: float) -> Iterator[TraceRecord]:
        """Records with ``start <= time < end``."""
        for record in self.records:
            if start <= record.time < end:
                yield record

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of a kind, or None."""
        indices = self._kind_index.get(kind)
        if not indices:
            return None
        return self.records[indices[-1]]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.records)
        return len(self._kind_index.get(kind, []))

    def clear(self) -> None:
        self.records.clear()
        self._kind_index.clear()
