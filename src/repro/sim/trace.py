"""Simulation trace recording.

The paper (Sect. 4.1) exploits the on-chip debug and trace infrastructure
to observe the system without modifying it.  :class:`Trace` is our
simulation-level analogue: a time-stamped, append-only record of named
observations that monitors can subscribe to or query after the fact.

Traces double as the data source for program spectra (Sect. 4.4): the
block instrumentation emits ``block:<id>`` records that the diagnosis
package folds into hit spectra per scenario step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One observation: at ``time``, ``source`` reported ``kind``/``value``."""

    time: float
    source: str
    kind: str
    value: Any = None


class Trace:
    """Append-only trace with live subscribers and post-hoc queries."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._clock = clock or (lambda: 0.0)
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._kind_index: Dict[str, List[int]] = {}

    def emit(self, source: str, kind: str, value: Any = None) -> TraceRecord:
        """Record an observation at the current simulated time."""
        record = TraceRecord(self._clock(), source, kind, value)
        self._kind_index.setdefault(kind, []).append(len(self.records))
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live subscriber invoked on every future record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """All records of one kind, in time order."""
        for index in self._kind_index.get(kind, []):
            yield self.records[index]

    def between(self, start: float, end: float) -> Iterator[TraceRecord]:
        """Records with ``start <= time < end``."""
        for record in self.records:
            if start <= record.time < end:
                yield record

    def last(self, kind: str) -> Optional[TraceRecord]:
        """Most recent record of a kind, or None."""
        indices = self._kind_index.get(kind)
        if not indices:
            return None
        return self.records[indices[-1]]

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.records)
        return len(self._kind_index.get(kind, []))

    def clear(self) -> None:
        self.records.clear()
        self._kind_index.clear()
