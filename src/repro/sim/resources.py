"""Contended shared resources for the simulated platform.

The paper's stress-testing work (Sect. 4.7) "artificially takes away shared
resources, such as CPU or bus bandwidth".  To support that, resources here
have an explicit *capacity* that can be changed at run time: the CPU eater
is literally ``resource.set_capacity(capacity - eaten)`` plus a competing
process.

Two resource kinds:

* :class:`Resource` — counting semaphore with FIFO or priority queueing
  (models bus slots, memory ports, decoder contexts);
* :class:`Store` — bounded buffer of items (models frame queues and
  message queues between components).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .kernel import Kernel, SimulationError


@dataclass(slots=True)
class ResourceStats:
    """Aggregate contention statistics, used by E4/E7/E11 benchmarks."""

    acquisitions: int = 0
    total_wait: float = 0.0
    max_wait: float = 0.0
    rejected: int = 0

    def mean_wait(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions


class Acquire:
    """Wait request yielded by a process to obtain one unit of a resource."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        self.resource = resource
        self.priority = priority

    def _submit(self, process: Any) -> None:
        self.resource._enqueue(process, self.priority)


class Resource:
    """A counting resource with run-time adjustable capacity.

    ``capacity`` units exist; ``in_use`` are held.  Waiters queue by
    ``(priority, seq)`` so equal-priority requests are FIFO.  Reducing the
    capacity below ``in_use`` does not preempt holders — the deficit is
    absorbed as holders release, which matches how bandwidth takeaway
    behaves on a real memory arbiter.
    """

    def __init__(self, kernel: Kernel, capacity: int, name: str = "resource") -> None:
        if capacity < 0:
            raise SimulationError("capacity must be non-negative")
        self.kernel = kernel
        self.name = name
        self._capacity = capacity
        self.in_use = 0
        self._seq = itertools.count()
        self._waiters: List[Tuple[int, int, Any, float]] = []
        self.stats = ResourceStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def set_capacity(self, capacity: int) -> None:
        """Adjust capacity at run time (stress testing / adaptive arbiter)."""
        if capacity < 0:
            raise SimulationError("capacity must be non-negative")
        self._capacity = capacity
        self._grant_waiters()

    def acquire(self, priority: int = 0) -> Acquire:
        """Build a wait request: ``yield resource.acquire()``."""
        return Acquire(self, priority)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self.in_use < self._capacity:
            self.in_use += 1
            self.stats.acquisitions += 1
            return True
        self.stats.rejected += 1
        return False

    def release(self) -> None:
        """Return one unit and hand it to the next waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of {self.name} with nothing held")
        self.in_use -= 1
        self._grant_waiters()

    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Instantaneous fraction of capacity in use (0 when capacity 0)."""
        if self._capacity == 0:
            return 1.0 if self.in_use else 0.0
        return self.in_use / self._capacity

    # ------------------------------------------------------------------
    def _enqueue(self, process: Any, priority: int) -> None:
        # Uncontended acquire — nobody queued, a unit free — grants
        # immediately without touching the wait heap; the stats come out
        # identical (zero wait moves neither total nor max).
        if not self._waiters and self.in_use < self._capacity:
            self.in_use += 1
            self.stats.acquisitions += 1
            process._resume(self)
            return
        heapq.heappush(
            self._waiters, (priority, next(self._seq), process, self.kernel.now)
        )
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters and self.in_use < self._capacity:
            _, _, process, enqueue_time = heapq.heappop(self._waiters)
            if not getattr(process, "alive", True):
                continue
            self.in_use += 1
            wait = self.kernel.now - enqueue_time
            self.stats.acquisitions += 1
            self.stats.total_wait += wait
            self.stats.max_wait = max(self.stats.max_wait, wait)
            process._resume(self)

    def drop_waiter(self, process: Any) -> None:
        """Remove a killed process from the wait queue (recovery path)."""
        self._waiters = [w for w in self._waiters if w[2] is not process]
        heapq.heapify(self._waiters)


class GetItem:
    """Wait request for :meth:`Store.get`."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        self.store = store

    def _submit(self, process: Any) -> None:
        self.store._enqueue_getter(process)


class Store:
    """A bounded FIFO buffer connecting producer and consumer processes.

    ``put`` is non-blocking and returns False when the buffer is full
    (producers in a streaming pipeline *drop* rather than block — exactly
    the frame-drop behaviour the TV pipeline exhibits under overload, which
    the output observer then sees as degraded quality).
    """

    def __init__(self, kernel: Kernel, capacity: int = 0, name: str = "store") -> None:
        self.kernel = kernel
        self.name = name
        self.capacity = capacity  # 0 means unbounded
        self.items: List[Any] = []
        self._getters: List[Any] = []
        self.put_count = 0
        self.drop_count = 0

    def put(self, item: Any) -> bool:
        """Append an item; False (and drop) if the buffer is full."""
        if self.capacity and len(self.items) >= self.capacity:
            self.drop_count += 1
            return False
        self.items.append(item)
        self.put_count += 1
        self._serve_getters()
        return True

    def get(self) -> GetItem:
        """Build a wait request: ``item = yield store.get()``."""
        return GetItem(self)

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self.items:
            return self.items.pop(0)
        return None

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    def _enqueue_getter(self, process: Any) -> None:
        self._getters.append(process)
        self._serve_getters()

    def _serve_getters(self) -> None:
        while self.items and self._getters:
            process = self._getters.pop(0)
            if not getattr(process, "alive", True):
                continue
            item = self.items.pop(0)
            process._resume(item)

    def drop_getter(self, process: Any) -> None:
        """Remove a killed process from the getter queue."""
        self._getters = [g for g in self._getters if g is not process]

    def clear(self) -> int:
        """Discard buffered items (used when restarting a unit); returns count."""
        n = len(self.items)
        self.items.clear()
        return n
