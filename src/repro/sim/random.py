"""Seeded, named random streams.

Every stochastic subsystem (signal-quality noise, IPC jitter, fault
activation, user populations) draws from its *own* named stream derived
from a single experiment seed.  This gives two properties the experiments
need:

* full determinism — same seed, same run;
* *variance isolation* — changing e.g. the comparator sampling policy does
  not perturb the tuner-noise stream, so parameter sweeps compare like
  with like (common random numbers across sweep points).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent ``random.Random`` streams.

    Streams are keyed by name; the per-stream seed is derived by hashing
    ``(master_seed, name)`` so adding a new stream never shifts existing
    ones.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the named stream."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def reset(self) -> None:
        """Drop all streams; next access re-derives from the master seed."""
        self._streams.clear()
