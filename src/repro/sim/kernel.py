"""Discrete-event simulation kernel.

Everything in the reproduction that needs a notion of time — the simulated
SoC platform, the TV software, the awareness framework's sampling clock —
runs on top of this kernel.  It is a classic event-wheel design:

* a priority queue ordered by ``(time, priority, sequence)``;
* a simulated clock that only advances when events are dispatched;
* generator-based processes (see :mod:`repro.sim.process`) that suspend by
  yielding *wait requests* and are resumed by the kernel.

The kernel is deliberately deterministic: ties in time are broken first by
an explicit integer priority and then by insertion order, so a given seed
always produces the same trace.  The paper's experiments (e.g. comparator
tuning in Sect. 4.3) depend on reproducible interleavings of SUO events and
monitor observations.

Scale refactor (fleet engine): the kernel publishes on a
:class:`~repro.runtime.bus.EventBus` instead of private hook lists, heap
entries are plain ``(time, priority, seq, Event)`` tuples so ordering is
resolved by C tuple comparison instead of Python ``__lt__`` calls, the run
loop drains same-timestamp events in batches, and cancelled events —
which lazy deletion used to keep in the heap forever — are compacted away
once they dominate the queue, so long fault-injection campaigns run in
bounded memory.

Dispatch hot-path overhaul: :class:`Event` is a ``__slots__`` class (no
per-event ``__dict__``), and *transient* events — the periodic
reschedule chains that dominate fleet campaigns (process wake-ups,
comparator sampling ticks, render refreshes) — are recycled through a
bounded freelist instead of being allocated fresh every period.  A
caller that passes ``transient=True`` promises not to retain the
returned handle past the event's dispatch or cancellation; in exchange
the kernel reuses the object, which removes the single biggest
allocation churn in a fleet tick.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..runtime.bus import EventBus
from ..runtime.registry import ServiceRegistry

#: Bus topic carrying every dispatched :class:`Event`.
DISPATCH_TOPIC = "kernel.dispatch"

#: Minimum lazy-deletion debt before compaction is even considered.
COMPACT_MIN_DEBT = 64

#: Upper bound on recycled Event objects kept per kernel.
FREELIST_CAP = 512


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which is exactly the
    dispatch order (the heap itself orders raw tuples, so this comparison
    is for callers only).  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion), which keeps cancellation O(1);
    the owning kernel tracks the cancellation *debt* and compacts the
    heap when cancelled entries dominate it, so the queue cannot grow
    without bound.

    ``transient`` events are recycled into the kernel's freelist once
    they leave the heap (dispatched or cancelled-and-popped).  Holding a
    transient handle past that point and calling :meth:`cancel` on it is
    undefined — the object may already represent a different scheduled
    event.  Cancelling a *pending* transient event is always safe.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "name", "cancelled",
        "owner", "transient",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        name: str = "",
        cancelled: bool = False,
        owner: Optional["Kernel"] = None,
        transient: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        self.owner = owner
        self.transient = transient

    # Ordering mirrors the old dataclass(order=True) with compare=False
    # on everything but (time, priority, seq).
    def _key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    __hash__ = None  # type: ignore[assignment]  # match the old dataclass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, name={self.name!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the kernel skips it at dispatch time."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


#: One priority-queue slot: ``(time, priority, seq, event)``.
QueueEntry = Tuple[float, int, int, "Event"]


class Kernel:
    """The simulation executive.

    Typical use::

        kernel = Kernel()
        kernel.schedule(5.0, lambda: print("five"))
        kernel.run(until=10.0)

    Observation goes through the kernel's :attr:`bus`: every dispatch is
    published on :data:`DISPATCH_TOPIC` (the simulation-level analogue of
    the on-chip trace infrastructure the paper mentions in Sect. 4.1), and
    any subsystem may publish/subscribe its own topics.  Publishing on a
    silent topic is a single dict lookup, so an unobserved simulation pays
    ~nothing.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._queue: List[QueueEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.dispatched_count = 0
        #: The shared runtime event bus (dispatch trace, SUO observables,
        #: fleet campaign telemetry all ride on it).
        self.bus = bus or EventBus()
        #: Typed per-simulation service registry (see
        #: :class:`~repro.runtime.registry.ServiceRegistry`); still usable
        #: as a plain mapping for backwards compatibility.
        self.registry = ServiceRegistry(self.bus)
        #: Count of cancelled events still sitting in the heap.
        self._cancelled_debt = 0
        self.compactions = 0
        #: Recycled transient Event objects (bounded).
        self._free: List[Event] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        ``priority`` breaks ties at equal times; lower runs first.  Returns
        the :class:`Event`, which may be cancelled.  ``transient=True``
        opts into freelist reuse (see :class:`Event`): hot periodic
        chains should pass it, callers that retain the handle past
        dispatch must not.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Body of schedule_at, inlined: this is called once per periodic
        # event in a campaign, and the extra frame is measurable.
        time = self._now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
            event.owner = self
            event.transient = transient
        else:
            event = Event(time, priority, seq, callback, name, False, self, transient)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
        transient: bool = False,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time.

        This is the scheduling primitive (:meth:`schedule` delegates
        here).  The event fires at exactly ``time`` — it is *not*
        re-derived from a relative delay, because ``now + (time - now)``
        need not round-trip in floating point and can land an ulp early,
        reordering callers (like
        :class:`~repro.awareness.channel.MessageChannel`) that rely on
        monotone absolute deadlines.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (at={time}, now={self._now})"
            )
        seq = next(self._seq)
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.name = name
            event.cancelled = False
            event.owner = self
            event.transient = transient
        else:
            event = Event(time, priority, seq, callback, name, False, self, transient)
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def _recycle(self, event: Event) -> None:
        """Return a transient event that left the heap to the freelist."""
        event.owner = None
        event.callback = _NOOP  # drop closure references promptly
        free = self._free
        if len(free) < FREELIST_CAP:
            free.append(event)

    def add_dispatch_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook called just before every event dispatch.

        Compatibility shim over ``bus.subscribe(DISPATCH_TOPIC, ...)``;
        new code should subscribe to the bus directly.
        """
        self.bus.subscribe(DISPATCH_TOPIC, lambda _topic, event, _h=hook: _h(event))

    # ------------------------------------------------------------------
    # cancellation debt / heap compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled_debt += 1
        if (
            self._cancelled_debt >= COMPACT_MIN_DEBT
            and self._cancelled_debt * 2 >= len(self._queue)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled events from the heap; returns how many were shed.

        In-place (slice assignment) so run loops holding a reference to
        the queue keep seeing the live heap.
        """
        queue = self._queue
        before = len(queue)
        kept: List[QueueEntry] = []
        for entry in queue:
            event = entry[3]
            if event.cancelled:
                if event.transient:
                    self._recycle(event)
            else:
                kept.append(entry)
        queue[:] = kept
        heapq.heapify(queue)
        self._cancelled_debt = 0
        self.compactions += 1
        return before - len(queue)

    @property
    def cancelled_debt(self) -> int:
        """Cancelled events currently occupying heap slots."""
        return self._cancelled_debt

    def queue_size(self) -> int:
        """Raw heap size, cancelled entries included (memory proxy)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[3]
            if event.cancelled:
                self._cancelled_debt -= 1
                if event.transient:
                    self._recycle(event)
                else:
                    event.owner = None
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time moved backwards")
            self._now = event.time
            hooks = self.bus.snapshot(DISPATCH_TOPIC)
            for hook in hooks:
                hook(DISPATCH_TOPIC, event)
            self.dispatched_count += 1
            callback = event.callback
            if event.transient and not hooks:
                self._recycle(event)
            else:
                event.owner = None
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events dispatched by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier, so callers can interleave
        ``run(until=...)`` segments and still observe a monotone clock.

        The loop drains each distinct timestamp as one *batch*: the clock
        is written once per timestamp and the dispatch-trace subscriber
        snapshot is fetched once per timestamp.  Dispatch order is
        identical to one-at-a-time stepping — events scheduled by a batch
        member at the same timestamp merge into the batch in heap order.

        Transient events are recycled right after their callback is
        looked up, but only while no dispatch hook is attached — a hook
        may legitimately inspect (though not retain) the Event object it
        receives, so observation disables reuse rather than risking a
        recycled object changing under an observer.
        """
        dispatched = 0
        if max_events is not None and max_events <= 0:
            return 0
        limit = max_events if max_events is not None else -1
        queue = self._queue
        pop = heapq.heappop
        bus = self.bus
        recycle = self._recycle
        hooks_version = -1
        hooks: tuple = ()
        self._running = True
        try:
            while queue:
                head = queue[0]
                batch_time = head[0]
                if head[3].cancelled:
                    event = pop(queue)[3]
                    self._cancelled_debt -= 1
                    if event.transient:
                        recycle(event)
                    else:
                        event.owner = None
                    continue
                if until is not None and batch_time > until:
                    break
                if batch_time < self._now:
                    raise SimulationError(
                        "event queue corrupted: time moved backwards"
                    )
                self._now = batch_time
                if bus.version != hooks_version:
                    hooks_version = bus.version
                    hooks = bus.snapshot(DISPATCH_TOPIC)
                while True:
                    event = pop(queue)[3]
                    if event.cancelled:
                        self._cancelled_debt -= 1
                        if event.transient:
                            recycle(event)
                        else:
                            event.owner = None
                    else:
                        callback = event.callback
                        if hooks:
                            for hook in hooks:
                                hook(DISPATCH_TOPIC, event)
                            event.owner = None
                        elif event.transient:
                            recycle(event)
                        else:
                            event.owner = None
                        self.dispatched_count += 1
                        callback()
                        dispatched += 1
                        if dispatched == limit:
                            return dispatched
                    if not queue or queue[0][0] != batch_time:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return dispatched

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        O(1) in the common case: compaction keeps cancelled entries from
        accumulating, and any cancelled head stripped here is paid for
        exactly once (amortized constant).
        """
        queue = self._queue
        while queue and queue[0][3].cancelled:
            event = heapq.heappop(queue)[3]
            self._cancelled_debt -= 1
            if event.transient:
                self._recycle(event)
            else:
                event.owner = None
        if not queue:
            return None
        return queue[0][0]

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._queue) - self._cancelled_debt


def _NOOP() -> None:  # recycled events point here until reassigned
    return None
