"""Discrete-event simulation kernel.

Everything in the reproduction that needs a notion of time — the simulated
SoC platform, the TV software, the awareness framework's sampling clock —
runs on top of this kernel.  It is a classic event-wheel design:

* a priority queue ordered by ``(time, priority, sequence)``;
* a simulated clock that only advances when events are dispatched;
* generator-based processes (see :mod:`repro.sim.process`) that suspend by
  yielding *wait requests* and are resumed by the kernel.

The kernel is deliberately deterministic: ties in time are broken first by
an explicit integer priority and then by insertion order, so a given seed
always produces the same trace.  The paper's experiments (e.g. comparator
tuning in Sect. 4.3) depend on reproducible interleavings of SUO events and
monitor observations.

Scale refactor (fleet engine): the kernel publishes on a
:class:`~repro.runtime.bus.EventBus` instead of private hook lists, heap
entries are plain ``(time, priority, seq, Event)`` tuples so ordering is
resolved by C tuple comparison instead of Python ``__lt__`` calls, the run
loop drains same-timestamp events in batches, and cancelled events —
which lazy deletion used to keep in the heap forever — are compacted away
once they dominate the queue, so long fault-injection campaigns run in
bounded memory.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..runtime.bus import EventBus
from ..runtime.registry import ServiceRegistry

#: Bus topic carrying every dispatched :class:`Event`.
DISPATCH_TOPIC = "kernel.dispatch"

#: Minimum lazy-deletion debt before compaction is even considered.
COMPACT_MIN_DEBT = 64


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which is exactly the
    dispatch order (the heap itself orders raw tuples, so this comparison
    is for callers only).  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion), which keeps cancellation O(1);
    the owning kernel tracks the cancellation *debt* and compacts the
    heap when cancelled entries dominate it, so the queue cannot grow
    without bound.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    owner: Optional["Kernel"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it at dispatch time."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


#: One priority-queue slot: ``(time, priority, seq, event)``.
QueueEntry = Tuple[float, int, int, "Event"]


class Kernel:
    """The simulation executive.

    Typical use::

        kernel = Kernel()
        kernel.schedule(5.0, lambda: print("five"))
        kernel.run(until=10.0)

    Observation goes through the kernel's :attr:`bus`: every dispatch is
    published on :data:`DISPATCH_TOPIC` (the simulation-level analogue of
    the on-chip trace infrastructure the paper mentions in Sect. 4.1), and
    any subsystem may publish/subscribe its own topics.  Publishing on a
    silent topic is a single dict lookup, so an unobserved simulation pays
    ~nothing.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._queue: List[QueueEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.dispatched_count = 0
        #: The shared runtime event bus (dispatch trace, SUO observables,
        #: fleet campaign telemetry all ride on it).
        self.bus = bus or EventBus()
        #: Typed per-simulation service registry (see
        #: :class:`~repro.runtime.registry.ServiceRegistry`); still usable
        #: as a plain mapping for backwards compatibility.
        self.registry = ServiceRegistry(self.bus)
        #: Count of cancelled events still sitting in the heap.
        self._cancelled_debt = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        ``priority`` breaks ties at equal times; lower runs first.  Returns
        the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, name=name
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time.

        This is the scheduling primitive (:meth:`schedule` delegates
        here).  The event fires at exactly ``time`` — it is *not*
        re-derived from a relative delay, because ``now + (time - now)``
        need not round-trip in floating point and can land an ulp early,
        reordering callers (like
        :class:`~repro.awareness.channel.MessageChannel`) that rely on
        monotone absolute deadlines.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (at={time}, now={self._now})"
            )
        seq = next(self._seq)
        event = Event(
            time=time,
            priority=priority,
            seq=seq,
            callback=callback,
            name=name,
            owner=self,
        )
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def add_dispatch_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook called just before every event dispatch.

        Compatibility shim over ``bus.subscribe(DISPATCH_TOPIC, ...)``;
        new code should subscribe to the bus directly.
        """
        self.bus.subscribe(DISPATCH_TOPIC, lambda _topic, event, _h=hook: _h(event))

    # ------------------------------------------------------------------
    # cancellation debt / heap compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled_debt += 1
        if (
            self._cancelled_debt >= COMPACT_MIN_DEBT
            and self._cancelled_debt * 2 >= len(self._queue)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled events from the heap; returns how many were shed.

        In-place (slice assignment) so run loops holding a reference to
        the queue keep seeing the live heap.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if not entry[3].cancelled]
        heapq.heapify(queue)
        self._cancelled_debt = 0
        self.compactions += 1
        return before - len(queue)

    @property
    def cancelled_debt(self) -> int:
        """Cancelled events currently occupying heap slots."""
        return self._cancelled_debt

    def queue_size(self) -> int:
        """Raw heap size, cancelled entries included (memory proxy)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[3]
            event.owner = None
            if event.cancelled:
                self._cancelled_debt -= 1
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time moved backwards")
            self._now = event.time
            for hook in self.bus.snapshot(DISPATCH_TOPIC):
                hook(DISPATCH_TOPIC, event)
            self.dispatched_count += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events dispatched by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier, so callers can interleave
        ``run(until=...)`` segments and still observe a monotone clock.

        The loop drains each distinct timestamp as one *batch*: the clock
        is written once per timestamp and the dispatch-trace subscriber
        snapshot is fetched once per timestamp.  Dispatch order is
        identical to one-at-a-time stepping — events scheduled by a batch
        member at the same timestamp merge into the batch in heap order.
        """
        dispatched = 0
        if max_events is not None and max_events <= 0:
            return 0
        limit = max_events if max_events is not None else -1
        queue = self._queue
        pop = heapq.heappop
        bus = self.bus
        hooks_version = -1
        hooks: tuple = ()
        self._running = True
        try:
            while queue:
                head = queue[0]
                batch_time = head[0]
                if head[3].cancelled:
                    pop(queue)[3].owner = None
                    self._cancelled_debt -= 1
                    continue
                if until is not None and batch_time > until:
                    break
                if batch_time < self._now:
                    raise SimulationError(
                        "event queue corrupted: time moved backwards"
                    )
                self._now = batch_time
                if bus.version != hooks_version:
                    hooks_version = bus.version
                    hooks = bus.snapshot(DISPATCH_TOPIC)
                while True:
                    event = pop(queue)[3]
                    event.owner = None
                    if event.cancelled:
                        self._cancelled_debt -= 1
                    else:
                        if hooks:
                            for hook in hooks:
                                hook(DISPATCH_TOPIC, event)
                        self.dispatched_count += 1
                        event.callback()
                        dispatched += 1
                        if dispatched == limit:
                            return dispatched
                    if not queue or queue[0][0] != batch_time:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return dispatched

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty.

        O(1) in the common case: compaction keeps cancelled entries from
        accumulating, and any cancelled head stripped here is paid for
        exactly once (amortized constant).
        """
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)[3].owner = None
            self._cancelled_debt -= 1
        if not queue:
            return None
        return queue[0][0]

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._queue) - self._cancelled_debt
