"""Discrete-event simulation kernel.

Everything in the reproduction that needs a notion of time — the simulated
SoC platform, the TV software, the awareness framework's sampling clock —
runs on top of this kernel.  It is a classic event-wheel design:

* a priority queue of :class:`Event` objects ordered by ``(time, priority,
  sequence)``;
* a simulated clock that only advances when events are dispatched;
* generator-based processes (see :mod:`repro.sim.process`) that suspend by
  yielding *wait requests* and are resumed by the kernel.

The kernel is deliberately deterministic: ties in time are broken first by
an explicit integer priority and then by insertion order, so a given seed
always produces the same trace.  The paper's experiments (e.g. comparator
tuning in Sect. 4.3) depend on reproducible interleavings of SUO events and
monitor observations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which is exactly the
    dispatch order.  ``cancelled`` events stay in the heap but are skipped
    when popped (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it at dispatch time."""
        self.cancelled = True


class Kernel:
    """The simulation executive.

    Typical use::

        kernel = Kernel()
        kernel.schedule(5.0, lambda: print("five"))
        kernel.run(until=10.0)

    The kernel also exposes *hooks* so observers (the awareness framework's
    probes) can watch every dispatch without patching the simulated system —
    this is the simulation-level analogue of the on-chip trace
    infrastructure the paper mentions in Sect. 4.1.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._dispatch_hooks: List[Callable[[Event], None]] = []
        self.dispatched_count = 0
        #: Arbitrary per-simulation shared registry (used by resources and
        #: trace sinks to find each other without global state).
        self.registry: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        ``priority`` breaks ties at equal times; lower runs first.  Returns
        the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            name=name,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, priority=priority, name=name)

    def add_dispatch_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook called just before every event dispatch."""
        self._dispatch_hooks.append(hook)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time moved backwards")
            self._now = event.time
            for hook in self._dispatch_hooks:
                hook(event)
            self.dispatched_count += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events dispatched by this call.  When
        ``until`` is given the clock is advanced to exactly ``until`` even
        if the last event fired earlier, so callers can interleave
        ``run(until=...)`` segments and still observe a monotone clock.
        """
        dispatched = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and dispatched >= max_events:
                    return dispatched
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                dispatched += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return dispatched

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def pending_count(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
