"""Printer/copier domain (the Octopus project of Sect. 5)."""

from .engine import Feeder, Finisher, PrintEngine, PrintedPage, Printer, PrintJob
from .model import (
    build_printer_model,
    default_printer_config,
    expected_page_rate,
    expected_progressing,
    expected_queue_depth,
    expected_status,
    make_printer_monitor,
    resync_printer_monitor,
)

__all__ = [
    "Feeder",
    "Finisher",
    "PrintEngine",
    "PrintJob",
    "PrintedPage",
    "Printer",
    "build_printer_model",
    "default_printer_config",
    "expected_page_rate",
    "expected_progressing",
    "expected_queue_depth",
    "expected_status",
    "make_printer_monitor",
    "resync_printer_monitor",
]
