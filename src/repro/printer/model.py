"""Specification model and monitor adapter for the printer SUO.

The same recipe as the TV: a partial, user-view state machine (job
lifecycle and throughput expectations), expected-value providers, and a
:func:`make_printer_monitor` that performs the 'SUO modifications' of
Fig. 2 for the printer.

The throughput observable shows the approach extending beyond pure
control state: the model predicts a *minimum page rate* while printing;
a silently jammed feeder violates it even though the control state still
looks plausible.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..awareness.config import AwarenessConfig
from ..awareness.monitor import AwarenessMonitor
from ..core.contract import Observation
from ..statemachine.builder import MachineBuilder
from ..statemachine.machine import Machine
from .engine import Printer

#: Nominal seconds per page (pick + print, no stapling).
NOMINAL_PAGE_TIME = 1.0
#: The model's tolerance before declaring progress stalled.  Must cover
#: the engine's bounded warmup (5.0) plus one page, or a healthy cold
#: start would be flagged.
PAGE_TIME_SLACK = 8.0
#: Minimum sustained throughput the spec expects once the paper path has
#: ramped (pages per time unit; the engine's nominal is ~1/page-time).
NOMINAL_PAGE_RATE = 1.0 / NOMINAL_PAGE_TIME
#: Time after entering ``printing`` over which the expected rate ramps
#: linearly from 0 to nominal (covers the bounded warmup plus filling
#: one rate window).
RATE_RAMP = 8.0


def _on_submit(machine: Machine, event) -> None:
    machine.set("jobs", machine.get("jobs") + 1)
    machine.set("last_progress", event.time)


def _on_start_printing(machine: Machine, event) -> None:
    _on_submit(machine, event)
    machine.set("printing_since", event.time)


def _on_resume(machine: Machine, event) -> None:
    # A resumed path re-warms and refills the rate window; progress and
    # throughput expectations re-arm from the resume instant.
    machine.set("last_progress", event.time)
    machine.set("printing_since", event.time)


def _on_progress(machine: Machine, event) -> None:
    machine.set("last_progress", event.time)


def _on_job_done(machine: Machine, event) -> None:
    machine.set("jobs", max(0, machine.get("jobs") - 1))


def build_printer_model() -> Machine:
    """Job-lifecycle spec: idle / printing / paused with queue depth and
    throughput expectations (the PR 4 detection-depth observables)."""
    b = MachineBuilder("printer_spec")
    b.var("jobs", 0)
    b.var("last_progress", 0.0)
    b.var("printing_since", 0.0)
    b.state("idle")
    b.state("printing")
    b.state("paused")
    b.initial("idle")
    b.transition("idle", "printing", event="submit", action=_on_start_printing)
    b.transition("printing", None, event="submit", action=_on_submit, internal=True)
    b.transition("paused", None, event="submit", action=_on_submit, internal=True)
    b.transition("printing", "paused", event="pause")
    b.transition("paused", "printing", event="resume", action=_on_resume)
    b.transition(
        "printing",
        None,
        event="page",
        action=_on_progress,
        internal=True,
    )
    b.transition(
        "printing", None, event="job_done", action=_on_job_done, internal=True
    )
    b.transition(
        "paused", None, event="job_done", action=_on_job_done, internal=True
    )
    b.transition(
        "printing",
        "idle",
        event="all_jobs_done",
        action=lambda m, e: m.set("jobs", 0),
    )
    b.transition("printing", "idle", event="cancel", action=lambda m, e: m.set("jobs", 0))
    b.transition("paused", "idle", event="cancel", action=lambda m, e: m.set("jobs", 0))
    return b.build()


def expected_status(machine: Machine) -> str:
    return machine.configuration().split(".")[-1]


def expected_progressing(machine: Machine) -> bool:
    """While printing, a page must land within the slack window."""
    if expected_status(machine) != "printing":
        return True
    stalled_for = machine.time - machine.get("last_progress")
    return stalled_for <= NOMINAL_PAGE_TIME * PAGE_TIME_SLACK


def expected_queue_depth(machine: Machine) -> int:
    """Jobs submitted but not yet completed — the depth the SUO's
    ``queue`` observable must track (consistency observable)."""
    return machine.get("jobs")


def expected_page_rate(machine: Machine) -> float:
    """The throughput floor the spec predicts (pages per time unit).

    Zero while idle or paused; after entering ``printing`` the
    expectation ramps linearly over :data:`RATE_RAMP` (bounded warmup +
    window fill) up to :data:`NOMINAL_PAGE_RATE`.  A silently jammed
    feeder keeps reporting ``printing`` while the observed rate decays
    to zero — the divergence the throughput observable detects even
    though the control state still looks plausible.
    """
    if expected_status(machine) != "printing":
        return 0.0
    ramp = machine.time - machine.get("printing_since")
    if ramp >= RATE_RAMP:
        return NOMINAL_PAGE_RATE
    return NOMINAL_PAGE_RATE * max(0.0, ramp) / RATE_RAMP


def default_printer_config() -> AwarenessConfig:
    config = AwarenessConfig()
    # Job completion is a multi-event burst (job_done, queue, status out;
    # all_jobs_done in) whose parts cross the two channels with
    # independent jitter — up to ~4 comparisons at distinct instants can
    # see the SUO's new status against the model's pre-completion state,
    # so the streak must outlast the skew window (printer-jam-drill
    # surfaced a drain-to-idle false alarm at max_consecutive=2).
    config.observable("status", max_consecutive=4, trigger="both", period=0.5)
    config.observable(
        "progressing", max_consecutive=2, trigger="time", period=1.0, severity=2.0
    )
    config.observable(
        "page_quality", threshold=0.25, max_consecutive=3, trigger="event",
        severity=1.5,
    )
    # PR 4 detection depth: queue-depth consistency (±1 rides out the
    # channel skew between a submit crossing the input channel and the
    # matching queue event crossing the output channel; max_consecutive
    # additionally covers multi-job bursts landing in one instant) and
    # the throughput floor (time-sampled so a silent jam is caught even
    # while the SUO emits nothing at all).
    config.observable(
        "queue", threshold=1.0, max_consecutive=4, trigger="both", period=1.0,
    )
    config.observable(
        "page_rate", threshold=0.7, max_consecutive=3, trigger="time",
        period=1.0, severity=1.5,
    )
    return config


def _printer_translator(observation: Observation) -> Optional[Tuple[str, Dict[str, Any]]]:
    if observation.name == "command":
        return observation.value, {}
    if observation.name in ("page", "job_done", "all_jobs_done"):
        return observation.name, {}
    return None


def make_printer_monitor(
    printer: Printer,
    config: Optional[AwarenessConfig] = None,
    channel_delay: float = 0.05,
    channel_jitter: float = 0.02,
    start: bool = True,
    name: Optional[str] = None,
) -> AwarenessMonitor:
    """Attach a fully wired awareness monitor to a printer.

    Attachment is topic-based (like the TV and player monitors): the
    printer publishes commands and output events on the runtime bus
    under ``suo.<suo_id>.*``, and the monitor subscribes — nothing on
    the SUO is patched, so fleets attach monitors the same way probes
    attach.
    """
    machine = build_printer_model()
    monitor = AwarenessMonitor(
        printer.kernel,
        machine,
        _printer_translator,
        providers={
            "status": expected_status,
            "progressing": expected_progressing,
            # Fused pages must be near-perfect; the observable compares the
            # model's constant expectation against the last page quality.
            "page_quality": lambda m: 1.0,
            "queue": expected_queue_depth,
            "page_rate": expected_page_rate,
        },
        config=config or default_printer_config(),
        channel_delay=channel_delay,
        channel_jitter=channel_jitter,
        name=name or "printer-awareness",
    )
    bus = printer.kernel.bus
    bus.subscribe(
        f"suo.{printer.suo_id}.input",
        lambda _topic, command: monitor.send_input(
            "command", command, printer.kernel.now
        ),
    )

    def forward_output(_topic: str, output) -> None:
        output_name, value = output
        now = printer.kernel.now
        monitor.send_output(output_name, value, now)
        # page deliveries and job completions are also model inputs
        if output_name == "pages_done":
            monitor.send_input("page", value, now)
        if output_name == "job_done":
            monitor.send_input("job_done", value, now)
        if output_name == "status" and value == "idle":
            monitor.send_input("all_jobs_done", None, now)
        # The 'progressing' observable captures the silent-jam class of
        # fault.  The SUO reports True (it *believes* it is making
        # progress) whenever it emits page/queue activity; the model-side
        # provider recomputes whether progress actually arrives within
        # the spec's timing window.  A silently jammed feeder keeps the
        # system's belief at True while the model's verdict flips to
        # False — the divergence is the error, found by time-based
        # comparison (the system alone would never notice).
        if output_name in ("pages_done", "queue"):
            monitor.send_output("progressing", True, now)

    bus.subscribe(f"suo.{printer.suo_id}.output", forward_output)
    monitor.attach_resync(lambda: resync_printer_monitor(monitor, printer))
    if start:
        monitor.start()
    return monitor


def resync_printer_monitor(monitor: AwarenessMonitor, printer: Printer) -> None:
    """Re-seed a printer monitor from the printer's observable state
    (the restart handshake — see :meth:`Machine.reseed`).

    The model adopts the printer's current status and queue depth, and
    the progress/throughput expectations re-arm at the restart instant
    (``printing_since`` restarts the rate ramp, so a monitor restarted
    mid-job does not flag the window refill).  A still-jammed feeder is
    re-detected once the re-armed slack window elapses with no pages.
    """
    now = printer.kernel.now
    status = printer.status if printer.status in ("idle", "printing", "paused") else "idle"
    monitor.executor.machine.reseed(
        status,
        now,
        vars={
            "jobs": len(printer.queue),
            "last_progress": now,
            "printing_since": now,
        },
    )
    for name, value in (
        ("status", printer.status),
        ("queue", len(printer.queue)),
        ("pages_done", len(printer.pages)),
        ("page_rate", round(printer.page_rate(), 3)),
        ("progressing", True),
    ):
        monitor.output_observer.latest[name] = Observation(
            time=now, source="suo", name=name, value=value
        )
    monitor.comparator.reset()
