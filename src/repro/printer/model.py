"""Specification model and monitor adapter for the printer SUO.

The same recipe as the TV: a partial, user-view state machine (job
lifecycle and throughput expectations), expected-value providers, and a
:func:`make_printer_monitor` that performs the 'SUO modifications' of
Fig. 2 for the printer.

The throughput observable shows the approach extending beyond pure
control state: the model predicts a *minimum page rate* while printing;
a silently jammed feeder violates it even though the control state still
looks plausible.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..awareness.config import AwarenessConfig
from ..awareness.monitor import AwarenessMonitor
from ..core.contract import Observation
from ..statemachine.builder import MachineBuilder
from ..statemachine.machine import Machine
from .engine import Printer

#: Nominal seconds per page (pick + print, no stapling).
NOMINAL_PAGE_TIME = 1.0
#: The model's tolerance before declaring progress stalled.  Must cover
#: the engine's bounded warmup (5.0) plus one page, or a healthy cold
#: start would be flagged.
PAGE_TIME_SLACK = 8.0


def _on_submit(machine: Machine, event) -> None:
    machine.set("jobs", machine.get("jobs") + 1)
    machine.set("last_progress", event.time)


def _on_progress(machine: Machine, event) -> None:
    machine.set("last_progress", event.time)


def _on_done(machine: Machine, event) -> None:
    machine.set("jobs", max(0, machine.get("jobs") - 1))


def build_printer_model() -> Machine:
    """Job-lifecycle spec: idle / printing / paused with queue counting."""
    b = MachineBuilder("printer_spec")
    b.var("jobs", 0)
    b.var("last_progress", 0.0)
    b.state("idle")
    b.state("printing")
    b.state("paused")
    b.initial("idle")
    b.transition("idle", "printing", event="submit", action=_on_submit)
    b.transition("printing", None, event="submit", action=_on_submit, internal=True)
    b.transition("paused", None, event="submit", action=_on_submit, internal=True)
    b.transition("printing", "paused", event="pause")
    b.transition("paused", "printing", event="resume")
    b.transition(
        "printing",
        None,
        event="page",
        action=_on_progress,
        internal=True,
    )
    b.transition(
        "printing",
        "idle",
        event="all_jobs_done",
        action=lambda m, e: m.set("jobs", 0),
    )
    b.transition("printing", "idle", event="cancel", action=lambda m, e: m.set("jobs", 0))
    b.transition("paused", "idle", event="cancel", action=lambda m, e: m.set("jobs", 0))
    return b.build()


def expected_status(machine: Machine) -> str:
    return machine.configuration().split(".")[-1]


def expected_progressing(machine: Machine) -> bool:
    """While printing, a page must land within the slack window."""
    if expected_status(machine) != "printing":
        return True
    stalled_for = machine.time - machine.get("last_progress")
    return stalled_for <= NOMINAL_PAGE_TIME * PAGE_TIME_SLACK


def default_printer_config() -> AwarenessConfig:
    config = AwarenessConfig()
    config.observable("status", max_consecutive=2, trigger="both", period=0.5)
    config.observable(
        "progressing", max_consecutive=2, trigger="time", period=1.0, severity=2.0
    )
    config.observable(
        "page_quality", threshold=0.25, max_consecutive=3, trigger="event",
        severity=1.5,
    )
    return config


def _printer_translator(observation: Observation) -> Optional[Tuple[str, Dict[str, Any]]]:
    if observation.name == "command":
        return observation.value, {}
    if observation.name == "page":
        return "page", {}
    if observation.name == "all_jobs_done":
        return "all_jobs_done", {}
    return None


def make_printer_monitor(
    printer: Printer,
    config: Optional[AwarenessConfig] = None,
    channel_delay: float = 0.05,
    channel_jitter: float = 0.02,
    start: bool = True,
) -> AwarenessMonitor:
    """Attach a fully wired awareness monitor to a printer."""
    machine = build_printer_model()
    monitor = AwarenessMonitor(
        printer.kernel,
        machine,
        _printer_translator,
        providers={
            "status": expected_status,
            "progressing": expected_progressing,
            # Fused pages must be near-perfect; the observable compares the
            # model's constant expectation against the last page quality.
            "page_quality": lambda m: 1.0,
        },
        config=config or default_printer_config(),
        channel_delay=channel_delay,
        channel_jitter=channel_jitter,
        name="printer-awareness",
    )
    printer.command_hooks.append(
        lambda command: monitor.send_input("command", command, printer.kernel.now)
    )

    def forward_output(name: str, value: Any) -> None:
        monitor.send_output(name, value, printer.kernel.now)
        # page deliveries are also model inputs (progress events)
        if name == "pages_done":
            monitor.send_input("page", value, printer.kernel.now)
        if name == "status" and value == "idle":
            monitor.send_input("all_jobs_done", None, printer.kernel.now)

    printer.output_hooks.append(forward_output)

    # The 'progressing' observable captures the silent-jam class of fault.
    # The SUO reports True (it *believes* it is making progress) whenever
    # it emits any activity; the model-side provider recomputes whether
    # progress is actually arriving within the spec's timing window.  A
    # silently jammed feeder keeps the system's belief at True while the
    # model's verdict flips to False — the divergence is the error, found
    # by time-based comparison (the system alone would never notice).
    printer.output_hooks.append(
        lambda name, value: monitor.send_output(
            "progressing", True, printer.kernel.now
        )
        if name in ("pages_done", "queue")
        else None
    )
    if start:
        monitor.start()
    return monitor
