"""A printer/copier SUO: the Octopus-project domain of Sect. 5.

"In parallel, the model-based run-time awareness concept is also
exploited in the domain of printer/copiers at the company Océ in the
context of the ESI-project Octopus."

The printer is a paper path of three cooperating components — feeder,
print engine (with a thermal model), finisher — processing queued jobs.
It exposes the same monitoring surface as the TV: user-level output
events (status, pages delivered), component *modes* for consistency
checking, and injectable faults:

* ``silent_jam``   — the feeder stalls but keeps reporting ``feeding``
  (the mode-inconsistency class of fault);
* ``cold_fuser``   — fuser temperature control degrades; pages print but
  quality drops (a performance/quality fault);
* ``lost_staples`` — the finisher silently stops stapling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..koala.component import Component
from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process


@dataclass
class PrintJob:
    """One submitted job."""

    job_id: int
    pages: int
    staple: bool = False
    pages_done: int = 0
    delivered: bool = False


@dataclass(frozen=True)
class PrintedPage:
    """One delivered page with its fusing quality."""

    time: float
    job_id: int
    page: int
    quality: float
    stapled: bool


class Feeder(Component):
    """Picks sheets from the tray."""

    PICK_TIME = 0.4

    def __init__(self, kernel: Kernel, name: str = "feeder") -> None:
        self.kernel = kernel
        self.sheets_fed = 0
        #: Fault hook: feeder stalls while still reporting 'feeding'.
        self.silently_jammed = False
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("idle")

    def feed_one(self) -> Generator[Any, Any, bool]:
        """Generator: pick one sheet; returns False when jammed."""
        self.set_mode("feeding")
        yield Delay(self.PICK_TIME)
        if self.silently_jammed:
            # The fault: the pick roller slips forever; mode stays
            # 'feeding' — the component itself never notices.
            while True:
                yield Delay(1.0)
        self.sheets_fed += 1
        return True

    def rest(self) -> None:
        self.set_mode("idle")


class PrintEngine(Component):
    """Marks and fuses pages; quality follows fuser temperature."""

    PRINT_TIME = 0.6
    TARGET_TEMPERATURE = 180.0
    AMBIENT = 20.0
    HEAT_RATE = 40.0       # degrees per time unit while heating
    COOL_RATE = 2.0        # passive cooling per time unit
    QUALITY_BAND = 40.0    # degrees below target over which quality fades

    def __init__(self, kernel: Kernel, name: str = "engine") -> None:
        self.kernel = kernel
        self.temperature = self.AMBIENT
        self.pages_printed = 0
        #: Fault hook: heater power degraded to this fraction.
        self.heater_power = 1.0
        self._last_update = 0.0
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("cold")

    # -- thermal model ---------------------------------------------------
    def update_temperature(self, heating: bool) -> None:
        elapsed = self.kernel.now - self._last_update
        self._last_update = self.kernel.now
        if elapsed <= 0:
            return
        if heating:
            gain = self.HEAT_RATE * self.heater_power * elapsed
            self.temperature = min(self.TARGET_TEMPERATURE, self.temperature + gain)
        else:
            self.temperature = max(
                self.AMBIENT, self.temperature - self.COOL_RATE * elapsed
            )
        if self.temperature >= self.TARGET_TEMPERATURE - 5.0:
            self.set_mode("ready")
        elif self.temperature > self.AMBIENT + 10.0:
            self.set_mode("warming")
        else:
            self.set_mode("cold")

    def page_quality(self) -> float:
        """Fusing quality in [0, 1] from the current temperature."""
        deficit = max(0.0, self.TARGET_TEMPERATURE - self.temperature)
        return max(0.0, min(1.0, 1.0 - deficit / self.QUALITY_BAND))

    #: Bounded warmup: after this long the engine prints anyway (the
    #: thermostat trusts the heater; a degraded heater thus produces
    #: *bad pages*, not an eternal warmup — the user-visible failure).
    MAX_WARMUP = 5.0

    def warm_up(self) -> Generator[Any, Any, None]:
        """Generator: heat toward target, bounded by MAX_WARMUP."""
        self.update_temperature(heating=False)  # account idle cooling
        started = self.kernel.now
        while (
            self.temperature < self.TARGET_TEMPERATURE - 5.0
            and self.kernel.now - started < self.MAX_WARMUP
        ):
            yield Delay(0.5)
            self.update_temperature(heating=True)

    def print_one(self) -> Generator[Any, Any, float]:
        """Generator: mark+fuse one page; returns its quality."""
        self.update_temperature(heating=True)
        yield Delay(self.PRINT_TIME)
        self.update_temperature(heating=True)
        self.pages_printed += 1
        return self.page_quality()


class Finisher(Component):
    """Collects output; staples when the job asks for it."""

    STAPLE_TIME = 0.3

    def __init__(self, kernel: Kernel, name: str = "finisher") -> None:
        self.kernel = kernel
        self.pages_collected = 0
        self.staples_used = 0
        #: Fault hook: stapler empty but not reported.
        self.out_of_staples = False
        super().__init__(name)

    def configure(self) -> None:
        self.set_mode("idle")

    def collect(self, staple: bool) -> Generator[Any, Any, bool]:
        """Generator: collect a page; returns whether it was stapled."""
        self.set_mode("collecting")
        self.pages_collected += 1
        if staple:
            yield Delay(self.STAPLE_TIME)
            if self.out_of_staples:
                self.set_mode("idle")
                return False
            self.staples_used += 1
        self.set_mode("idle")
        return True


class Printer:
    """The assembled printer: job queue + paper path + observables.

    Observables published on ``suo.<suo_id>.output`` (PR 4 deepened the
    set: status and queue length alone could not expose a silent jam to
    a monitor watching the bus):

    * ``status``       — idle | printing | paused on every change;
    * ``queue``        — queue depth on submit/complete/cancel;
    * ``pages_done`` / ``page_quality`` — per delivered page;
    * ``job_done``     — job id on every completed job;
    * ``page_rate``    — pages per :attr:`RATE_WINDOW`, sampled every
      :attr:`RATE_PERIOD` while the paper path is active (the
      throughput observable the spec model predicts a floor for).
    """

    #: Trailing window (simulated time) for the throughput observable.
    RATE_WINDOW = 5.0
    #: Sampling period of the periodic ``page_rate`` publisher.
    RATE_PERIOD = 1.0

    def __init__(self, kernel: Optional[Kernel] = None, suo_id: str = "printer") -> None:
        self.kernel = kernel or Kernel()
        self.suo_id = suo_id
        self._publish_output = self.kernel.bus.publisher(f"suo.{suo_id}.output")
        self._publish_command = self.kernel.bus.publisher(f"suo.{suo_id}.input")
        self.feeder = Feeder(self.kernel)
        self.engine = PrintEngine(self.kernel)
        self.finisher = Finisher(self.kernel)
        self.status = "idle"  # idle | printing | paused
        self.queue: List[PrintJob] = []
        self.completed: List[PrintJob] = []
        self.pages: List[PrintedPage] = []
        self.output_hooks: List[Callable[[str, Any], None]] = []
        self.command_hooks: List[Callable[[str], None]] = []
        self._job_counter = 0
        self._worker: Optional[Process] = None
        self._rate_publisher: Optional[Process] = None

    # ------------------------------------------------------------------
    # command API (the printer's input events)
    # ------------------------------------------------------------------
    def submit(self, pages: int, staple: bool = False) -> PrintJob:
        """Submit a job; starts the paper path when idle."""
        self._job_counter += 1
        job = PrintJob(job_id=self._job_counter, pages=pages, staple=staple)
        self.queue.append(job)
        self._notify_command("submit")
        if self.status == "idle":
            self._set_status("printing")
            self._start_worker()
        self._publish("queue", len(self.queue))
        return job

    def pause(self) -> None:
        self._notify_command("pause")
        if self.status == "printing":
            self._set_status("paused")

    def resume(self) -> None:
        self._notify_command("resume")
        if self.status == "paused":
            self._set_status("printing")

    def cancel_all(self) -> None:
        self._notify_command("cancel")
        self.queue.clear()
        if self._worker is not None and self._worker.alive:
            self._worker.kill("cancel")
        self._worker = None
        self.feeder.rest()
        self._set_status("idle")
        self._publish("queue", 0)

    # ------------------------------------------------------------------
    # the paper path
    # ------------------------------------------------------------------
    def _start_worker(self) -> None:
        self._worker = Process(self.kernel, self._run_jobs(), name="paper-path")
        if self._rate_publisher is None or not self._rate_publisher.alive:
            self._rate_publisher = Process(
                self.kernel, self._publish_rate_loop(), name="page-rate"
            )

    def _publish_rate_loop(self) -> Generator[Any, Any, None]:
        """Sample the throughput observable while the paper path is
        active; one final zero sample marks the return to idle."""
        try:
            while self.status != "idle" or self.queue:
                self._publish("page_rate", round(self.page_rate(), 3))
                yield Delay(self.RATE_PERIOD)
            self._publish("page_rate", 0.0)
        except Interrupted:
            return

    def _run_jobs(self) -> Generator[Any, Any, None]:
        try:
            yield from self.engine.warm_up()
            while self.queue:
                job = self.queue[0]
                while job.pages_done < job.pages:
                    while self.status == "paused":
                        yield Delay(0.2)
                        self.engine.update_temperature(heating=False)
                    fed = yield from self.feeder.feed_one()
                    if not fed:
                        return
                    quality = yield from self.engine.print_one()
                    stapled = yield from self.finisher.collect(job.staple)
                    job.pages_done += 1
                    page = PrintedPage(
                        time=self.kernel.now,
                        job_id=job.job_id,
                        page=job.pages_done,
                        quality=quality,
                        stapled=stapled,
                    )
                    self.pages.append(page)
                    self._publish("pages_done", len(self.pages))
                    self._publish("page_quality", round(quality, 3))
                job.delivered = True
                self.completed.append(job)
                self.queue.pop(0)
                self._publish("job_done", job.job_id)
                self._publish("queue", len(self.queue))
            self.feeder.rest()
            self._set_status("idle")
        except Interrupted:
            return

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def _set_status(self, status: str) -> None:
        if status == self.status:
            return
        self.status = status
        self._publish("status", status)

    def _publish(self, name: str, value: Any) -> None:
        for hook in self.output_hooks:
            hook(name, value)
        self._publish_output((name, value))

    def _notify_command(self, command: str) -> None:
        for hook in self.command_hooks:
            hook(command)
        self._publish_command(command)

    def page_rate(self, window: Optional[float] = None) -> float:
        """Pages delivered per time unit over the trailing window."""
        window = window if window is not None else self.RATE_WINDOW
        cutoff = self.kernel.now - window
        count = 0
        for page in reversed(self.pages):
            if page.time <= cutoff:
                break
            count += 1
        return count / window

    def mean_quality(self, since: float = 0.0) -> float:
        relevant = [p.quality for p in self.pages if p.time >= since]
        if not relevant:
            return 0.0
        return sum(relevant) / len(relevant)

    def component_modes(self) -> Dict[str, str]:
        """The mode map the consistency checker samples."""
        return {
            "feeder": self.feeder.mode,
            "engine": self.engine.mode,
            "finisher": self.finisher.mode,
            "printer": self.status,
        }

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def inject_silent_jam(self) -> None:
        self.feeder.silently_jammed = True

    def clear_jam(self) -> None:
        """Recovery: clear the jam and restart the paper path."""
        self.feeder.silently_jammed = False
        if self._worker is not None and self._worker.alive:
            self._worker.kill("jam clear")
        if self.queue and self.status != "paused":
            self._set_status("printing")
            self._start_worker()
        elif not self.queue:
            self.feeder.rest()
            self._set_status("idle")

    def inject_cold_fuser(self, power: float = 0.2) -> None:
        self.engine.heater_power = power

    def repair_fuser(self) -> None:
        self.engine.heater_power = 1.0

    def inject_lost_staples(self) -> None:
        self.finisher.out_of_staples = True

    def refill_staples(self) -> None:
        self.finisher.out_of_staples = False
