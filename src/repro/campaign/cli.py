"""``python -m repro.campaign`` — run, resume, status, list, worker.

The campaign layer's human/CI surface, mirroring ``repro.obs`` and
``repro.fuzz`` conventions: every command takes ``--db`` (the same
SQLite store ``repro.obs`` uses; default ``BENCH_history.sqlite``) and
``--json`` for machine-readable output.

    python -m repro.campaign run --scenario zapping-storm --seeds 1 2 \\
        --backend process --campaign-id nightly
    python -m repro.campaign resume nightly        # skip durable shards
    python -m repro.campaign status nightly        # cells, shards, digests
    python -m repro.campaign list                  # known campaigns
    python -m repro.campaign worker --port 7077    # serve remote shards

``run`` checkpoints every completed shard under ``--campaign-id`` (one
is generated when omitted), so an interrupted invocation resumes with
``resume`` — producing digests byte-identical to an uninterrupted run
(docs/DISTRIBUTED.md walks through the guarantees).  ``--ephemeral``
skips the store entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .backends import ProcessShardBackend, SerialBackend
from .checkpoint import CampaignCheckpoint, new_campaign_id, resume_campaign
from .core import Campaign
from .distributed import (
    DistributedBackend,
    InlineExecutor,
    ProcessWorkerExecutor,
    ShardWorkerServer,
    SocketWorkerExecutor,
)
from .report import CampaignReport, format_campaign_table

DEFAULT_DB = "BENCH_history.sqlite"

BACKENDS = ("serial", "process", "inline", "distributed", "socket")


def _parse_address(value: str):
    host, _sep, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"worker address must be host:port, got {value!r}"
        )
    return (host, int(port))


def _make_backend(args: argparse.Namespace):
    shards: Optional[int] = args.shards
    if args.backend == "serial":
        return SerialBackend()
    if args.backend == "process":
        return ProcessShardBackend(shards=shards)
    if args.backend == "inline":
        return DistributedBackend(InlineExecutor(), shards=shards)
    if args.backend == "distributed":
        return DistributedBackend(ProcessWorkerExecutor(), shards=shards)
    if args.backend == "socket":
        if not args.workers:
            raise SystemExit(
                "--backend socket needs at least one --worker host:port"
            )
        return DistributedBackend(
            SocketWorkerExecutor(args.workers), shards=shards,
        )
    raise SystemExit(f"unknown backend {args.backend!r}")


def _shards_arg(value: str) -> Optional[int]:
    if value == "auto":
        return None
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError("shards must be >= 1 or 'auto'")
    return count


def _emit_reports(reports: List[CampaignReport], as_json: bool) -> None:
    if as_json:
        print(json.dumps(
            [json.loads(report.to_json()) for report in reports],
            indent=2, sort_keys=True,
        ))
    else:
        print(format_campaign_table(reports))


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    backend = _make_backend(args)
    campaign = Campaign(args.scenario, seeds=args.seeds, scale=args.scale)
    if args.ephemeral:
        reports = campaign.run(backend)
        _emit_reports(reports, args.json)
        return 0
    campaign_id = args.campaign_id or new_campaign_id()
    with CampaignCheckpoint(args.db) as checkpoint:
        reports = campaign.run(
            backend, checkpoint=checkpoint, campaign_id=campaign_id,
        )
    _emit_reports(reports, args.json)
    if not args.json:
        print(f"campaign {campaign_id!r}: {len(reports)} cell(s) durable "
              f"in {args.db}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    backend = _make_backend(args)
    with CampaignCheckpoint(args.db) as checkpoint:
        try:
            reports = resume_campaign(
                args.campaign_id, checkpoint, backend=backend,
            )
        except KeyError:
            print(f"no campaign {args.campaign_id!r} in {args.db}")
            return 1
    _emit_reports(reports, args.json)
    if not args.json:
        print(f"campaign {args.campaign_id!r}: {len(reports)} cell(s) "
              f"complete")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    with CampaignCheckpoint(args.db) as checkpoint:
        status = checkpoint.status(args.campaign_id)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if status["cells"] else 1
    if not status["cells"]:
        print(f"no campaign {args.campaign_id!r} in {args.db}")
        return 1
    print(
        f"campaign {args.campaign_id!r}: {status['cells_complete']}/"
        f"{status['cells_total']} cells complete"
    )
    for cell in status["cells"]:
        print(
            f"  {cell['scenario']:<24} seed={cell['seed']:<4} "
            f"{cell['completed_shards']}/{cell['resolved_shards']} shards "
            f"(requested {cell['requested_shards']}) {cell['status']:<9} "
            f"telemetry={(cell['telemetry_digest'] or '-')[:12]}"
        )
        if cell["status"] == "complete":
            continue
        # A partial cell is a resume target: show exactly which shards
        # remain and how many attempts the durable ones took.
        for shard in cell["shards"]:
            if shard["state"] == "complete":
                detail = (
                    f"complete  attempts={shard['attempts']} "
                    f"worker={shard['worker']}"
                )
            else:
                detail = "missing"
            print(f"    shard {shard['shard_id']:>3}: {detail}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    with CampaignCheckpoint(args.db) as checkpoint:
        campaigns = checkpoint.campaigns(limit=args.limit)
    if args.json:
        print(json.dumps(campaigns, indent=2, sort_keys=True))
        return 0
    if not campaigns:
        print(f"no campaigns recorded in {args.db}")
        return 0
    print(f"{args.db}: {len(campaigns)} campaign(s)")
    for entry in campaigns:
        print(
            f"  {entry['campaign_id']:<28} {entry['created_at']}  "
            f"{entry['cells_complete']}/{entry['cells_total']} cells"
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    server = ShardWorkerServer(host=args.host, port=args.port)
    host, port = server.address
    print(f"shard worker listening on {host}:{port}", flush=True)
    try:
        served = server.serve(max_requests=args.max_requests)
    except KeyboardInterrupt:
        served = 0
    finally:
        server.close()
    print(f"served {served} shard(s)")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db", default=DEFAULT_DB,
            help=f"checkpoint/history SQLite file (default: {DEFAULT_DB})",
        )
        sub.add_argument(
            "--json", action="store_true",
            help="emit machine-readable JSON instead of tables",
        )

    def add_backend(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend", choices=BACKENDS, default="serial",
            help="execution backend (default: serial)",
        )
        sub.add_argument(
            "--shards", type=_shards_arg, default=None, metavar="N|auto",
            help="shard count for sharded backends ('auto' = autotune; "
            "default: the backend's own default)",
        )
        sub.add_argument(
            "--worker", dest="workers", action="append",
            type=_parse_address, metavar="HOST:PORT",
            help="remote shard worker (repeatable; socket backend only)",
        )

    run = commands.add_parser(
        "run", help="run a campaign, checkpointing every completed shard"
    )
    add_common(run)
    add_backend(run)
    run.add_argument(
        "--scenario", action="append", required=True,
        help="library scenario name (repeatable)",
    )
    run.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="campaign seeds (default: 0)",
    )
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument(
        "--campaign-id",
        help="name for the checkpoint rows (default: generated)",
    )
    run.add_argument(
        "--ephemeral", action="store_true",
        help="skip the checkpoint store entirely",
    )
    run.set_defaults(func=_cmd_run)

    resume = commands.add_parser(
        "resume", help="finish an interrupted campaign from its checkpoint"
    )
    add_common(resume)
    add_backend(resume)
    resume.add_argument("campaign_id")
    resume.set_defaults(func=_cmd_resume)

    status = commands.add_parser(
        "status", help="per-cell shard progress and digests of a campaign"
    )
    add_common(status)
    status.add_argument("campaign_id")
    status.set_defaults(func=_cmd_status)

    listing = commands.add_parser("list", help="known campaigns in the store")
    add_common(listing)
    listing.add_argument("--limit", type=int, default=50)
    listing.set_defaults(func=_cmd_list)

    worker = commands.add_parser(
        "worker", help="serve shard plans to socket-backend campaigns"
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = ephemeral, printed at startup)",
    )
    worker.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after serving this many shards (default: forever)",
    )
    worker.set_defaults(func=_cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
