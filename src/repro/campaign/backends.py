"""Execution backends: the one seam every campaign cell runs through.

PR 9 collapsed the three overlapping entry points that had accreted
around campaign execution (``ExecutionBackend.run(spec, seed)``,
``SerialBackend.run_detailed``, module-level ``run_shard_plan``) into a
single protocol:

* **executors** implement ``submit(plan) -> ShardResult`` — run one
  per-shard :class:`~repro.scenarios.plan.ScenarioPlan` wherever the
  backend keeps its workers (in-process, a worker process, another
  host) and hand back the shard's mergeable payload;
* **orchestration** lives in exactly one place,
  :func:`repro.campaign.core.execute_cell` — plan, partition, skip
  checkpointed shards, submit the rest, merge — and every backend
  (serial, process-sharded, distributed) flows through it via
  :meth:`ExecutorBackend.run_cell`.

The old signatures survive as warn-once deprecation shims (see the
"deprecated entry points" section at the bottom); their behaviour is
pinned by ``tests/test_campaign.py``.

The sharded contract (verified by ``tests/test_campaign.py`` and gated
in CI) is unchanged:

* merged counter/tally telemetry is **identical** to the serial run's —
  per-member behaviour keys to ``(campaign seed, suo_id)`` so placement
  cannot perturb it;
* per-shard trace digests are reproducible across reruns;
* shard-local randomness (reservoir sampling) keys to
  ``derive_shard_seed(seed, shard_id)``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..runtime.fleet import FleetReport, warn_deprecated_once
from ..scenarios.compile import CompiledScenario
from ..scenarios.plan import ScenarioPlan, derive_shard_seed
from ..scenarios.spec import ScenarioSpec
from .report import CampaignReport

__all__ = [
    "ExecutionBackend",
    "ExecutorBackend",
    "ProcessShardBackend",
    "SerialBackend",
    "ShardResult",
    "derive_shard_seed",
    "execute_plan",
    "execute_plan_detailed",
    "execute_plan_segmented",
    "resolve_shards",
    "run_shard_plan",
]

#: Fewest members worth a dedicated worker process: below this the
#: fork/merge overhead of another shard outweighs its share of the
#: simulation (measured on bench_e16 scale points).
MIN_MEMBERS_PER_SHARD = 25


def resolve_shards(members: int, cpu_count: Optional[int] = None) -> int:
    """Pick a shard count from the host and the plan size (ROADMAP
    "shard-count autotuning").

    One shard per ``MIN_MEMBERS_PER_SHARD`` members, capped at the CPU
    count — a 1-CPU container degrades to a single in-process shard and
    a thousand-SUO cell on a big host fans out to every core.  Every
    backend's ``resolve()`` routes through here, and the resolved count
    is what a :class:`~repro.campaign.checkpoint.CampaignCheckpoint`
    records — so an autotune decision is visible in the checkpoint row
    instead of vanishing with the process that made it.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    by_size = max(1, members // MIN_MEMBERS_PER_SHARD)
    return max(1, min(cpus, by_size))


# ----------------------------------------------------------------------
# the unit of work and the unit of result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardResult:
    """One executed shard: the durable, mergeable unit of a campaign.

    ``payload`` is the JSON-safe dict :func:`execute_plan` produces
    (mergeable summary, span block, digests, detection accounting);
    ``attempt`` and ``worker`` record how the shard got executed — the
    fault-tolerance provenance a checkpoint row keeps.  The payload is
    exactly what :func:`~repro.campaign.report.merge_shard_results`
    folds, so a result loaded back from a checkpoint merges bit-for-bit
    like a fresh one.
    """

    shard_id: int
    payload: Dict[str, Any] = field(repr=False)
    attempt: int = 0
    worker: str = "local"

    def to_json(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "attempt": self.attempt,
            "worker": self.worker,
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ShardResult":
        return cls(
            shard_id=int(data["shard_id"]),
            payload=data["payload"],
            attempt=int(data.get("attempt", 0)),
            worker=str(data.get("worker", "local")),
        )


def _shard_payload(
    compiled: CompiledScenario, fleet_report: FleetReport
) -> Dict[str, Any]:
    """Everything a worker sends home: JSON-friendly, mergeable."""
    fleet = compiled.fleet
    return {
        "shard_id": compiled.plan.shard_id,
        "members": len(fleet),
        "duration": fleet_report.duration,
        "dispatched": fleet_report.dispatched,
        "wall_seconds": fleet_report.wall_seconds,
        "trace_digest": fleet.trace_digest(),
        "trace_records": fleet.record_count(),
        # per_suo + samples make the summary mergeable (see telemetry).
        "summary": fleet.telemetry.summary(per_suo=True, samples=True),
        "faulty": fleet_report.faulty,
        "detected": fleet_report.detected,
        "false_alarms": fleet_report.false_alarms,
        "monitored_clean": fleet_report.monitored_clean or 0,
        "errors_by_suo": fleet_report.errors_by_suo,
        "profile_mix": {
            name: len(group)
            for name, group in compiled.profile_groups.items()
        },
        # Causal-span block (None unless the spec set record_spans):
        # counters + digest triples merge exactly; see merge_span_blocks.
        "spans": (
            compiled.span_recorder.mergeable()
            if compiled.span_recorder is not None else None
        ),
    }


def execute_plan(plan: ScenarioPlan) -> Dict[str, Any]:
    """Compile and run one plan (a full cell or one shard of it).

    The executor primitive every backend bottoms out in.  Module-level
    so :mod:`multiprocessing` can ship it to workers by reference under
    every start method, and so a socket worker on another host runs the
    byte-identical code path.
    """
    compiled = CompiledScenario(plan.spec, plan.seed, plan=plan)
    fleet_report = compiled.run()
    return _shard_payload(compiled, fleet_report)


def execute_plan_segmented(
    plan: ScenarioPlan,
    segments: int,
    on_segment: Optional[Callable[[CompiledScenario, int, float], None]] = None,
) -> Dict[str, Any]:
    """:func:`execute_plan`, sliced into ``segments`` kernel runs.

    The payload is byte-identical to :func:`execute_plan`'s for any
    segment count (see :meth:`CompiledScenario.run_segmented`); the
    difference is purely observational — ``on_segment`` fires between
    slices with live telemetry flushed, which is where the campaign
    service samples :class:`~repro.runtime.telemetry.FleetTelemetry`
    snapshots for its NDJSON stream and checks for cancellation.
    """
    compiled = CompiledScenario(plan.spec, plan.seed, plan=plan)
    fleet_report = compiled.run_segmented(segments, on_segment=on_segment)
    return _shard_payload(compiled, fleet_report)


def execute_plan_detailed(
    plan: ScenarioPlan,
) -> Tuple[Dict[str, Any], FleetReport, CompiledScenario]:
    """:func:`execute_plan` plus the live compiled objects.

    Only meaningful in-process; this is what the detailed serial path
    (:func:`repro.campaign.core.run_cell_detailed`) uses so callers can
    still inspect members, span recorders, and fleet internals."""
    compiled = CompiledScenario(plan.spec, plan.seed, plan=plan)
    fleet_report = compiled.run()
    return _shard_payload(compiled, fleet_report), fleet_report, compiled


#: Callback invoked with each completed :class:`ShardResult` as it
#: lands (checkpoint writes hook in here).
ResultSink = Callable[[ShardResult], None]


# ----------------------------------------------------------------------
# the unified backend protocol
# ----------------------------------------------------------------------
@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute per-shard plans for a campaign cell.

    The PR 9 protocol: ``resolve`` picks the shard count for a spec,
    ``submit`` executes one plan, ``submit_all`` executes a batch
    (possibly in parallel) and streams results into ``on_result``.  The
    legacy ``run(spec, seed)`` surface still exists on every concrete
    backend but is a warn-once deprecation shim.
    """

    name: str

    def resolve(self, spec: ScenarioSpec) -> int: ...

    def submit(self, plan: ScenarioPlan) -> ShardResult: ...

    def submit_all(
        self,
        plans: Sequence[ScenarioPlan],
        on_result: Optional[ResultSink] = None,
    ) -> List[ShardResult]: ...


class ExecutorBackend:
    """Base class wiring a ``submit`` seam into the one orchestration
    path (:func:`repro.campaign.core.execute_cell`).

    Subclasses override :meth:`submit` (and optionally
    :meth:`submit_all` for parallel dispatch and :meth:`resolve` for
    their sharding policy); everything above — planning, partitioning,
    checkpoint skip/record, merging — is shared and identical across
    serial, process, and distributed execution.
    """

    name = "executor"

    # -- sharding policy ------------------------------------------------
    def resolve(self, spec: ScenarioSpec) -> int:
        """The shard count this backend will use for one cell."""
        return 1

    # -- the executor seam ----------------------------------------------
    def submit(self, plan: ScenarioPlan) -> ShardResult:
        raise NotImplementedError

    def submit_all(
        self,
        plans: Sequence[ScenarioPlan],
        on_result: Optional[ResultSink] = None,
    ) -> List[ShardResult]:
        """Execute a batch of shard plans; default is sequential."""
        results = []
        for plan in plans:
            result = self.submit(plan)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results

    # -- orchestration (delegates to the single shared path) ------------
    def run_cell(
        self,
        spec: ScenarioSpec,
        seed: int,
        checkpoint: Optional[Any] = None,
        campaign_id: Optional[str] = None,
    ) -> CampaignReport:
        """Run one (scenario, seed) cell through this backend."""
        from .core import execute_cell

        return execute_cell(
            spec, seed, backend=self,
            checkpoint=checkpoint, campaign_id=campaign_id,
        )

    # -- deprecated entry point -----------------------------------------
    def run(self, spec: ScenarioSpec, seed: int) -> CampaignReport:
        """.. deprecated:: PR 9
            ``backend.run(spec, seed)`` was one of three overlapping
            entry points; use :func:`repro.campaign.run_cell` (or
            ``Campaign.run``) — the single orchestration path with
            checkpoint/resume support.  This shim forwards there.
        """
        warn_deprecated_once(
            "ExecutionBackend.run",
            "backend.run(spec, seed) is deprecated: use "
            "repro.campaign.run_cell(spec, seed, backend=...) or "
            "Campaign.run() — the unified orchestration path."
        )
        return self.run_cell(spec, seed)


class SerialBackend(ExecutorBackend):
    """The single-kernel path: one fleet, one telemetry hub, in-process.

    Routes its one shard through the same merge as every other backend,
    so serial and sharded reports are structurally identical and their
    ``telemetry_digest`` fields are directly comparable.
    """

    name = "serial"

    def submit(self, plan: ScenarioPlan) -> ShardResult:
        return ShardResult(
            shard_id=plan.shard_id, payload=execute_plan(plan),
            worker="inline",
        )

    # -- deprecated entry point -----------------------------------------
    def run_detailed(
        self, spec: ScenarioSpec, seed: int
    ) -> Tuple[CampaignReport, FleetReport, CompiledScenario]:
        """.. deprecated:: PR 9
            Use :func:`repro.campaign.run_cell_detailed`, which returns
            a :class:`~repro.campaign.core.CellExecution` with the same
            live objects.  This shim forwards there and re-shapes the
            result into the legacy triple.
        """
        warn_deprecated_once(
            "SerialBackend.run_detailed",
            "SerialBackend.run_detailed is deprecated: use "
            "repro.campaign.run_cell_detailed(spec, seed) — same report "
            "and live compiled objects, one orchestration path."
        )
        from .core import run_cell_detailed

        cell = run_cell_detailed(spec, seed)
        return cell.report, cell.fleet_report, cell.compiled


class ProcessShardBackend(ExecutorBackend):
    """Partitioned execution: one kernel + fleet per worker process.

    The cell's plan is built once from the campaign seed, partitioned
    round-robin per device kind, and each shard simulates its members in
    its own process (``fork`` where available — workers inherit the
    loaded interpreter — else the platform default).  Results merge into
    one :class:`CampaignReport`.

    ``inline=True`` runs the shard plans sequentially in-process: same
    partitioning, same merge, no processes — for debugging shard logic
    and for hosts where spawning is unavailable.

    ``shards=None`` autotunes per cell: :func:`resolve_shards` picks the
    count from ``os.cpu_count()`` and the scenario's member count, and
    (when a checkpoint is attached) the decision is recorded in the
    cell's checkpoint row.
    """

    def __init__(
        self,
        shards: Optional[int] = 2,
        start_method: Optional[str] = None,
        inline: bool = False,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1 (or None to autotune)")
        self.shards = shards
        self.start_method = start_method
        self.inline = inline

    @property
    def name(self) -> str:
        suffix = "-inline" if self.inline else ""
        label = "auto" if self.shards is None else str(self.shards)
        return f"process-shard[{label}]{suffix}"

    def resolve(self, spec: ScenarioSpec) -> int:
        if self.shards is not None:
            return self.shards
        return resolve_shards(spec.members)

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def submit(self, plan: ScenarioPlan) -> ShardResult:
        return ShardResult(
            shard_id=plan.shard_id, payload=execute_plan(plan),
            worker="inline",
        )

    def submit_all(
        self,
        plans: Sequence[ScenarioPlan],
        on_result: Optional[ResultSink] = None,
    ) -> List[ShardResult]:
        if self.inline or len(plans) <= 1:
            return super().submit_all(plans, on_result=on_result)
        results: List[ShardResult] = []
        with self._context().Pool(processes=len(plans)) as pool:
            # imap_unordered streams each shard's payload home as it
            # completes, so checkpoint writes land per shard — a worker
            # loss after k completions preserves k durable results.
            for payload in pool.imap_unordered(execute_plan, plans):
                result = ShardResult(
                    shard_id=payload["shard_id"], payload=payload,
                    worker="process",
                )
                if on_result is not None:
                    on_result(result)
                results.append(result)
        results.sort(key=lambda result: result.shard_id)
        return results


# ----------------------------------------------------------------------
# deprecated entry points (behaviour pinned by tests/test_campaign.py)
# ----------------------------------------------------------------------
def run_shard_plan(plan: ScenarioPlan) -> Dict[str, Any]:
    """.. deprecated:: PR 9
        The module-level worker primitive is :func:`execute_plan`
        (identical payload); this alias warns once and forwards.
    """
    warn_deprecated_once(
        "run_shard_plan",
        "run_shard_plan is deprecated: use repro.campaign.execute_plan "
        "(same payload, the one executor primitive)."
    )
    return execute_plan(plan)
