"""Execution backends: how one campaign cell actually runs.

The :class:`ExecutionBackend` protocol is the seam the ROADMAP's
"sharded fleets" decade needed: everything above it (Campaign, sweeps,
benches, CI gates) speaks (spec, seed) → :class:`CampaignReport`, and the
backend decides whether that cell simulates on one kernel
(:class:`SerialBackend`) or is partitioned across worker processes, one
kernel + fleet + telemetry hub per shard
(:class:`ProcessShardBackend`).

The sharded backend's contract (verified by ``tests/test_campaign.py``
and gated in CI):

* merged counter/tally telemetry is **identical** to the serial run's —
  per-member behaviour keys to ``(campaign seed, suo_id)`` so placement
  cannot perturb it;
* per-shard trace digests are reproducible across reruns;
* shard-local randomness (reservoir sampling) keys to
  ``derive_shard_seed(seed, shard_id)``.
"""

from __future__ import annotations

import multiprocessing
import os
import time as wallclock
from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable

from ..runtime.fleet import FleetReport
from ..scenarios.compile import CompiledScenario
from ..scenarios.plan import (
    ScenarioPlan,
    build_plan,
    derive_shard_seed,
    partition_plan,
)
from ..scenarios.spec import ScenarioSpec
from .report import CampaignReport, merge_shard_results

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessShardBackend",
    "derive_shard_seed",
    "resolve_shards",
    "run_shard_plan",
]

#: Fewest members worth a dedicated worker process: below this the
#: fork/merge overhead of another shard outweighs its share of the
#: simulation (measured on bench_e16 scale points).
MIN_MEMBERS_PER_SHARD = 25


def resolve_shards(members: int, cpu_count: Optional[int] = None) -> int:
    """Pick a shard count from the host and the plan size (ROADMAP
    "shard-count autotuning").

    One shard per ``MIN_MEMBERS_PER_SHARD`` members, capped at the CPU
    count — a 1-CPU container degrades to a single in-process shard and
    a thousand-SUO cell on a big host fans out to every core.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    by_size = max(1, members // MIN_MEMBERS_PER_SHARD)
    return max(1, min(cpus, by_size))


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can execute one (scenario, seed) campaign cell."""

    name: str

    def run(self, spec: ScenarioSpec, seed: int) -> CampaignReport: ...


def _shard_result(
    compiled: CompiledScenario, fleet_report: FleetReport
) -> Dict[str, Any]:
    """Everything a worker sends home: JSON-friendly, mergeable."""
    fleet = compiled.fleet
    return {
        "shard_id": compiled.plan.shard_id,
        "members": len(fleet),
        "duration": fleet_report.duration,
        "dispatched": fleet_report.dispatched,
        "wall_seconds": fleet_report.wall_seconds,
        "trace_digest": fleet.trace_digest(),
        "trace_records": fleet.record_count(),
        # per_suo + samples make the summary mergeable (see telemetry).
        "summary": fleet.telemetry.summary(per_suo=True, samples=True),
        "faulty": fleet_report.faulty,
        "detected": fleet_report.detected,
        "false_alarms": fleet_report.false_alarms,
        "monitored_clean": fleet_report.monitored_clean or 0,
        "errors_by_suo": fleet_report.errors_by_suo,
        "profile_mix": {
            name: len(group)
            for name, group in compiled.profile_groups.items()
        },
        # Causal-span block (None unless the spec set record_spans):
        # counters + digest triples merge exactly; see merge_span_blocks.
        "spans": (
            compiled.span_recorder.mergeable()
            if compiled.span_recorder is not None else None
        ),
    }


def run_shard_plan(plan: ScenarioPlan) -> Dict[str, Any]:
    """Compile and run one plan (a full cell or one shard of it).

    Module-level so :mod:`multiprocessing` can ship it to workers by
    reference under every start method.
    """
    compiled = CompiledScenario(plan.spec, plan.seed, plan=plan)
    fleet_report = compiled.run()
    return _shard_result(compiled, fleet_report)


class SerialBackend:
    """The single-kernel path: one fleet, one telemetry hub, in-process.

    Routes its one result through the same merge as the sharded backend,
    so serial and sharded reports are structurally identical and their
    ``telemetry_digest`` fields are directly comparable.
    """

    name = "serial"

    def run_detailed(
        self, spec: ScenarioSpec, seed: int
    ) -> Tuple[CampaignReport, FleetReport, CompiledScenario]:
        """Run and also expose the live fleet objects (legacy shims and
        tests that inspect members use this)."""
        start = wallclock.perf_counter()
        compiled = CompiledScenario(spec, seed)
        fleet_report = compiled.run()
        result = _shard_result(compiled, fleet_report)
        wall = wallclock.perf_counter() - start
        report = merge_shard_results(
            scenario=spec.name,
            seed=seed,
            backend=self.name,
            shards=1,
            results=[result],
            wall_seconds=wall,
            reservoir=spec.telemetry_reservoir,
        )
        return report, fleet_report, compiled

    def run(self, spec: ScenarioSpec, seed: int) -> CampaignReport:
        return self.run_detailed(spec, seed)[0]


class ProcessShardBackend:
    """Partitioned execution: one kernel + fleet per worker process.

    The cell's plan is built once from the campaign seed, partitioned
    round-robin per device kind, and each shard simulates its members in
    its own process (``fork`` where available — workers inherit the
    loaded interpreter — else the platform default).  Results merge into
    one :class:`CampaignReport`.

    ``inline=True`` runs the shard plans sequentially in-process: same
    partitioning, same merge, no processes — for debugging shard logic
    and for hosts where spawning is unavailable.

    ``shards=None`` autotunes per cell: :func:`resolve_shards` picks the
    count from ``os.cpu_count()`` and the scenario's member count.
    """

    def __init__(
        self,
        shards: Optional[int] = 2,
        start_method: Optional[str] = None,
        inline: bool = False,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1 (or None to autotune)")
        self.shards = shards
        self.start_method = start_method
        self.inline = inline

    @property
    def name(self) -> str:
        suffix = "-inline" if self.inline else ""
        label = "auto" if self.shards is None else str(self.shards)
        return f"process-shard[{label}]{suffix}"

    def resolve(self, spec: ScenarioSpec) -> int:
        """The shard count this backend will use for one cell."""
        if self.shards is not None:
            return self.shards
        return resolve_shards(spec.members)

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def run(self, spec: ScenarioSpec, seed: int) -> CampaignReport:
        start = wallclock.perf_counter()
        plans = partition_plan(build_plan(spec, seed), self.resolve(spec))
        if self.inline or len(plans) == 1:
            results = [run_shard_plan(plan) for plan in plans]
        else:
            with self._context().Pool(processes=len(plans)) as pool:
                results = pool.map(run_shard_plan, plans)
        results.sort(key=lambda result: result["shard_id"])
        wall = wallclock.perf_counter() - start
        return merge_shard_results(
            scenario=spec.name,
            seed=seed,
            backend=self.name,
            shards=len(plans),
            results=results,
            wall_seconds=wall,
            reservoir=spec.telemetry_reservoir,
        )
