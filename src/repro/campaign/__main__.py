"""Entry point: ``python -m repro.campaign`` (see
:mod:`repro.campaign.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # downstream pager/head closed the pipe — exit quietly like
        # any well-behaved unix filter
        sys.stderr.close()
        sys.exit(0)
