"""Campaign: the unified entry point for running scenario campaigns.

One class replaces the three overlapping PR 1/PR 2 surfaces
(``ExperimentRunner``, ``ScenarioRunner``, raw ``MonitorFleet``
driving): a :class:`Campaign` is a scenario × seed *plan* — scenarios
given as library names or :class:`~repro.scenarios.ScenarioSpec`
objects — executed by a pluggable
:class:`~repro.campaign.backends.ExecutorBackend`.

    from repro.campaign import Campaign, ProcessShardBackend

    campaign = Campaign(["zapping-storm", "alert-flood"], seeds=[1, 2])
    reports = campaign.run()                          # serial, in-process
    sharded = campaign.run(ProcessShardBackend(shards=4))

Since PR 9 every backend flows through :func:`execute_cell` — THE
orchestration path: build the placement plan, resolve the shard count,
partition, skip shards a checkpoint already holds, submit the rest
through the backend's executor seam, merge.  Attaching a
:class:`~repro.campaign.checkpoint.CampaignCheckpoint` makes every
completed shard durable, so an interrupted campaign resumes where it
stopped with a byte-identical ``telemetry_digest``.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple, Union

from ..runtime.fleet import FleetReport
from ..scenarios.compile import CompiledScenario
from ..scenarios.library import get_scenario
from ..scenarios.plan import build_plan, partition_plan
from ..scenarios.spec import ScenarioSpec
from .backends import (
    ExecutionBackend,
    SerialBackend,
    ShardResult,
    execute_plan_detailed,
)
from .report import CampaignReport, merge_shard_results

ScenarioLike = Union[str, ScenarioSpec]


def _resolve_scenario(scenario: ScenarioLike, scale: float = 1.0) -> ScenarioSpec:
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if scale != 1.0:
        spec = spec.scaled(scale)
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# THE orchestration path
# ----------------------------------------------------------------------
def execute_cell(
    spec: ScenarioSpec,
    seed: int,
    backend: Optional[ExecutionBackend] = None,
    checkpoint: Optional[Any] = None,
    campaign_id: Optional[str] = None,
) -> CampaignReport:
    """Run one (scenario, seed) cell — the single path every backend
    (serial, process-sharded, distributed) flows through.

    1. resolve the shard count — from the backend's policy, or from the
       checkpoint row when the cell was started before (the partition
       must not drift between a run and its resume);
    2. build the placement plan from the campaign seed and partition it;
    3. skip shards the checkpoint already holds, submit the rest
       through the backend's executor seam, recording each completed
       shard durably as it lands;
    4. merge everything into one :class:`CampaignReport` whose
       ``telemetry_digest`` is byte-identical however (and in however
       many sittings) the cell was executed.

    ``checkpoint`` is a
    :class:`~repro.campaign.checkpoint.CampaignCheckpoint` (or None for
    ephemeral runs); ``campaign_id`` names the campaign in the store.
    """
    engine = backend or SerialBackend()
    spec.validate()
    start = wallclock.perf_counter()
    cell = None
    if checkpoint is not None:
        cell = checkpoint.begin_cell(
            campaign_id=campaign_id, spec=spec, seed=seed, backend=engine,
        )
        shards = cell.resolved_shards
    else:
        shards = engine.resolve(spec)
    plans = partition_plan(build_plan(spec, seed), shards)
    completed = {} if cell is None else checkpoint.completed_shards(cell)
    pending = [plan for plan in plans if plan.shard_id not in completed]

    def record(result: ShardResult) -> None:
        if cell is not None:
            checkpoint.record_shard(cell, result)

    fresh = engine.submit_all(pending, on_result=record)
    results = sorted(
        list(completed.values()) + list(fresh),
        key=lambda result: result.shard_id,
    )
    report = merge_shard_results(
        scenario=spec.name,
        seed=seed,
        backend=engine.name,
        shards=len(plans),
        results=[result.payload for result in results],
        wall_seconds=wallclock.perf_counter() - start,
        reservoir=spec.telemetry_reservoir,
    )
    if cell is not None:
        checkpoint.finish_cell(cell, report)
    return report


def run_cell(
    scenario: ScenarioLike,
    seed: int = 0,
    backend: Optional[ExecutionBackend] = None,
    checkpoint: Optional[Any] = None,
    campaign_id: Optional[str] = None,
) -> CampaignReport:
    """Run a single cell by spec or library name (the blessed one-off
    surface; replaces the deprecated ``backend.run(spec, seed)``)."""
    return execute_cell(
        _resolve_scenario(scenario), seed, backend=backend,
        checkpoint=checkpoint, campaign_id=campaign_id,
    )


@dataclass
class CellExecution:
    """A serial cell run with its live in-process objects.

    What ``SerialBackend.run_detailed`` used to return as a bare triple:
    the merged report plus the :class:`FleetReport` and the live
    :class:`CompiledScenario` (members, span recorder, fleet) for
    callers that inspect the simulation — the fuzz oracle, the trace
    exporter, tests.
    """

    report: CampaignReport
    fleet_report: FleetReport
    compiled: CompiledScenario
    shard_result: ShardResult

    @property
    def span_recorder(self):
        return self.compiled.span_recorder


def run_cell_detailed(scenario: ScenarioLike, seed: int = 0) -> CellExecution:
    """Run one cell serially, keeping the live compiled objects.

    Necessarily in-process and single-shard (live fleets cannot cross a
    process boundary); the report still flows through the same merge as
    every other backend, so its digests are directly comparable.
    """
    spec = _resolve_scenario(scenario)
    start = wallclock.perf_counter()
    plan = build_plan(spec, seed)
    payload, fleet_report, compiled = execute_plan_detailed(plan)
    result = ShardResult(shard_id=0, payload=payload, worker="inline")
    report = merge_shard_results(
        scenario=spec.name,
        seed=seed,
        backend=SerialBackend.name,
        shards=1,
        results=[payload],
        wall_seconds=wallclock.perf_counter() - start,
        reservoir=spec.telemetry_reservoir,
    )
    return CellExecution(
        report=report, fleet_report=fleet_report, compiled=compiled,
        shard_result=result,
    )


class Campaign:
    """A scenario × seed plan plus the backend that executes it."""

    def __init__(
        self,
        scenarios: Union[ScenarioLike, Iterable[ScenarioLike]],
        seeds: Iterable[int] = (0,),
        scale: float = 1.0,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if isinstance(scenarios, (str, ScenarioSpec)):
            scenarios = [scenarios]
        if scale <= 0:
            raise ValueError("scale must be > 0")
        self.scale = scale
        self.backend: ExecutionBackend = backend or SerialBackend()
        specs = [self._resolve(scenario) for scenario in scenarios]
        seeds = [int(seed) for seed in seeds]
        if not specs:
            raise ValueError("a campaign needs at least one scenario")
        if not seeds:
            raise ValueError("a campaign needs at least one seed")
        #: The grid, row-major (scenario outer, seed inner).
        self.cells: List[Tuple[ScenarioSpec, int]] = [
            (spec, seed) for spec in specs for seed in seeds
        ]

    # ------------------------------------------------------------------
    def _resolve(self, scenario: ScenarioLike) -> ScenarioSpec:
        return _resolve_scenario(scenario, self.scale)

    # ------------------------------------------------------------------
    def run_cell(
        self,
        scenario: ScenarioLike,
        seed: int = 0,
        backend: Optional[ExecutionBackend] = None,
        checkpoint: Optional[Any] = None,
        campaign_id: Optional[str] = None,
    ) -> CampaignReport:
        """Run a single (scenario, seed) cell through a backend.

        A spec taken from :attr:`cells` is already resolved — it runs
        as-is, so feeding a grid cell back in never double-applies the
        campaign scale.  Anything else (a name or a fresh spec) resolves
        the same way the constructor did.
        """
        engine = backend or self.backend
        if not (
            isinstance(scenario, ScenarioSpec)
            and any(spec is scenario for spec, _seed in self.cells)
        ):
            scenario = self._resolve(scenario)
        return execute_cell(
            scenario, seed, backend=engine,
            checkpoint=checkpoint, campaign_id=campaign_id,
        )

    def run(
        self,
        backend: Optional[ExecutionBackend] = None,
        checkpoint: Optional[Any] = None,
        campaign_id: Optional[str] = None,
    ) -> List[CampaignReport]:
        """Run every cell of the plan; one report per cell, grid order.

        With ``checkpoint`` + ``campaign_id`` each completed shard is
        persisted as it lands, and a re-run (or
        :func:`~repro.campaign.checkpoint.resume_campaign`) skips
        everything already durable.
        """
        engine = backend or self.backend
        return [
            execute_cell(
                spec, seed, backend=engine,
                checkpoint=checkpoint, campaign_id=campaign_id,
            )
            for spec, seed in self.cells
        ]
