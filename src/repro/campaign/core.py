"""Campaign: the unified entry point for running scenario campaigns.

One class replaces the three overlapping PR 1/PR 2 surfaces
(``ExperimentRunner``, ``ScenarioRunner``, raw ``MonitorFleet``
driving): a :class:`Campaign` is a scenario × seed *plan* — scenarios
given as library names or :class:`~repro.scenarios.ScenarioSpec`
objects — executed by a pluggable
:class:`~repro.campaign.backends.ExecutionBackend`.

    from repro.campaign import Campaign, ProcessShardBackend

    campaign = Campaign(["zapping-storm", "alert-flood"], seeds=[1, 2])
    reports = campaign.run()                          # serial, in-process
    sharded = campaign.run(ProcessShardBackend(shards=4))

Both calls yield the same list of :class:`CampaignReport` cells, in
row-major order (scenario outer, seed inner), with merged telemetry and
the backend-invariant ``telemetry_digest`` witness.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from ..scenarios.library import get_scenario
from ..scenarios.spec import ScenarioSpec
from .backends import ExecutionBackend, SerialBackend
from .report import CampaignReport

ScenarioLike = Union[str, ScenarioSpec]


class Campaign:
    """A scenario × seed plan plus the backend that executes it."""

    def __init__(
        self,
        scenarios: Union[ScenarioLike, Iterable[ScenarioLike]],
        seeds: Iterable[int] = (0,),
        scale: float = 1.0,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if isinstance(scenarios, (str, ScenarioSpec)):
            scenarios = [scenarios]
        if scale <= 0:
            raise ValueError("scale must be > 0")
        self.scale = scale
        self.backend: ExecutionBackend = backend or SerialBackend()
        specs = [self._resolve(scenario) for scenario in scenarios]
        seeds = [int(seed) for seed in seeds]
        if not specs:
            raise ValueError("a campaign needs at least one scenario")
        if not seeds:
            raise ValueError("a campaign needs at least one seed")
        #: The grid, row-major (scenario outer, seed inner).
        self.cells: List[Tuple[ScenarioSpec, int]] = [
            (spec, seed) for spec in specs for seed in seeds
        ]

    # ------------------------------------------------------------------
    def _resolve(self, scenario: ScenarioLike) -> ScenarioSpec:
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        if self.scale != 1.0:
            spec = spec.scaled(self.scale)
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def run_cell(
        self,
        scenario: ScenarioLike,
        seed: int = 0,
        backend: Optional[ExecutionBackend] = None,
    ) -> CampaignReport:
        """Run a single (scenario, seed) cell through a backend.

        A spec taken from :attr:`cells` is already resolved — it runs
        as-is, so feeding a grid cell back in never double-applies the
        campaign scale.  Anything else (a name or a fresh spec) resolves
        the same way the constructor did.
        """
        engine = backend or self.backend
        if isinstance(scenario, ScenarioSpec) and any(
            spec is scenario for spec, _seed in self.cells
        ):
            return engine.run(scenario, seed)
        return engine.run(self._resolve(scenario), seed)

    def run(
        self, backend: Optional[ExecutionBackend] = None
    ) -> List[CampaignReport]:
        """Run every cell of the plan; one report per cell, grid order."""
        engine = backend or self.backend
        return [engine.run(spec, seed) for spec, seed in self.cells]
