"""Campaign layer: one public API over every way to run a campaign.

The paper's industry-as-laboratory premise (Sect. 3) is that runtime
awareness must hold up under production-scale workloads.  This package
is the API seam that makes scale pluggable:

* :mod:`repro.campaign.core`     — :class:`Campaign`, the scenario × seed
  plan built from specs or library names;
* :mod:`repro.campaign.backends` — the :class:`ExecutionBackend`
  protocol, :class:`SerialBackend` (one kernel, in-process), and
  :class:`ProcessShardBackend` (device mix partitioned into per-shard
  plans, one kernel + fleet per worker process, merged telemetry);
* :mod:`repro.campaign.report`   — :class:`CampaignReport`, the merged
  result schema with the backend-invariant ``telemetry_digest``.

``ExperimentRunner`` (PR 1) and ``ScenarioRunner`` (PR 2) survive as
thin deprecation shims; see docs/CAMPAIGNS.md for the API, the backend
selection guide, and the shard determinism rules.
"""

from .backends import (
    ExecutionBackend,
    ProcessShardBackend,
    SerialBackend,
    derive_shard_seed,
    resolve_shards,
    run_shard_plan,
)
from .core import Campaign, ScenarioLike
from .report import (
    CAMPAIGN_TABLE_HEADER,
    CampaignReport,
    format_campaign_table,
    merge_shard_results,
)

__all__ = [
    "CAMPAIGN_TABLE_HEADER",
    "Campaign",
    "CampaignReport",
    "ExecutionBackend",
    "ProcessShardBackend",
    "ScenarioLike",
    "SerialBackend",
    "derive_shard_seed",
    "format_campaign_table",
    "merge_shard_results",
    "resolve_shards",
    "run_shard_plan",
]
