"""Campaign layer: one public API over every way to run a campaign.

The paper's industry-as-laboratory premise (Sect. 3) is that runtime
awareness must hold up under production-scale workloads.  This package
is the API seam that makes scale pluggable:

* :mod:`repro.campaign.core`        — :class:`Campaign` (the scenario ×
  seed plan) and :func:`execute_cell`, THE orchestration path every
  backend flows through (plus :func:`run_cell` /
  :func:`run_cell_detailed`, the blessed one-off surfaces);
* :mod:`repro.campaign.backends`    — the PR 9 executor protocol
  (``submit(plan) -> ShardResult``), :class:`SerialBackend` (one
  kernel, in-process), and :class:`ProcessShardBackend` (device mix
  partitioned into per-shard plans, one kernel + fleet per worker
  process, merged telemetry);
* :mod:`repro.campaign.distributed` — :class:`DistributedBackend`
  dispatching shard plans to workers (in-process, per-process with
  heartbeat loss detection, or remote over sockets) with bounded
  retry;
* :mod:`repro.campaign.checkpoint`  — shard-durable progress in the
  :mod:`repro.obs.history` store and :func:`resume_campaign`;
* :mod:`repro.campaign.report`      — :class:`CampaignReport`, the
  merged result schema with the backend-invariant
  ``telemetry_digest``.

``python -m repro.campaign`` is the CLI (run / resume / status / list /
worker).  ``ExperimentRunner`` (PR 1), ``ScenarioRunner`` (PR 2), and
the pre-PR 9 entry points (``backend.run``, ``run_detailed``,
``run_shard_plan``) survive as warn-once deprecation shims; see
docs/CAMPAIGNS.md and docs/DISTRIBUTED.md.
"""

from .backends import (
    ExecutionBackend,
    ExecutorBackend,
    ProcessShardBackend,
    SerialBackend,
    ShardResult,
    derive_shard_seed,
    execute_plan,
    execute_plan_detailed,
    resolve_shards,
    run_shard_plan,
)
from .checkpoint import (
    CampaignCheckpoint,
    CellHandle,
    new_campaign_id,
    resume_campaign,
)
from .core import (
    Campaign,
    CellExecution,
    ScenarioLike,
    execute_cell,
    run_cell,
    run_cell_detailed,
)
from .distributed import (
    DistributedBackend,
    InlineExecutor,
    ProcessWorkerExecutor,
    ShardExhaustedError,
    ShardWorkerServer,
    SocketWorkerExecutor,
    WorkerFaultInjector,
    WorkerLostError,
)
from .report import (
    CAMPAIGN_TABLE_HEADER,
    CampaignReport,
    format_campaign_table,
    merge_shard_results,
)

__all__ = [
    "CAMPAIGN_TABLE_HEADER",
    "Campaign",
    "CampaignCheckpoint",
    "CampaignReport",
    "CellExecution",
    "CellHandle",
    "DistributedBackend",
    "ExecutionBackend",
    "ExecutorBackend",
    "InlineExecutor",
    "ProcessShardBackend",
    "ProcessWorkerExecutor",
    "ScenarioLike",
    "SerialBackend",
    "ShardExhaustedError",
    "ShardResult",
    "ShardWorkerServer",
    "SocketWorkerExecutor",
    "WorkerFaultInjector",
    "WorkerLostError",
    "derive_shard_seed",
    "execute_cell",
    "execute_plan",
    "execute_plan_detailed",
    "format_campaign_table",
    "merge_shard_results",
    "new_campaign_id",
    "resolve_shards",
    "resume_campaign",
    "run_cell",
    "run_cell_detailed",
    "run_shard_plan",
]
