"""Durable shard-level campaign checkpointing (PR 9).

A :class:`CampaignCheckpoint` wraps the :class:`~repro.obs.history.
RunHistory` store and persists every completed shard of every
(scenario, seed) cell — its mergeable telemetry summary, span block,
and trace digest — under ``(campaign_id, spec_hash, seed, shard_id)``.
When :func:`~repro.campaign.core.execute_cell` runs with a checkpoint
attached it skips shards the store already holds, so an interrupted
campaign resumes exactly where it stopped and the resumed
``telemetry_digest`` is byte-identical to an uninterrupted run (the
merge is a fold over per-shard payloads in shard order; where each
payload was computed, and in how many sittings, cannot perturb it).

Resume is self-contained: the cell row stores the spec's canonical
JSON, so :func:`resume_campaign` needs only the campaign id and the
store — not the script that launched the original run.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..obs.history import RunHistory
from ..scenarios.spec import ScenarioSpec, spec_hash
from .backends import ExecutionBackend, ShardResult
from .report import CampaignReport

__all__ = [
    "CampaignCheckpoint",
    "CellHandle",
    "new_campaign_id",
    "resume_campaign",
]


def new_campaign_id(prefix: str = "campaign") -> str:
    """A fresh collision-safe campaign name for unnamed runs."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class CellHandle:
    """One registered (campaign, scenario, seed) cell in the store."""

    cell_id: int
    campaign_id: str
    spec_hash: str
    seed: int
    #: The shard count recorded when the cell was first started.  On
    #: resume this wins over the resuming backend's own policy, so the
    #: partition — and therefore which shards are "already done" —
    #: cannot drift between a run and its resume (including an
    #: autotuned count picked on the original host).
    resolved_shards: int
    status: str


class CampaignCheckpoint:
    """Shard-durable progress for campaigns, backed by RunHistory.

    Accepts an open :class:`RunHistory` (caller keeps ownership) or a
    database path (owned; close via :meth:`close` or ``with``).
    """

    def __init__(self, store: Union[RunHistory, str]) -> None:
        if isinstance(store, RunHistory):
            self.history = store
            self._owned = False
        else:
            self.history = RunHistory(store)
            self._owned = True

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owned:
            self.history.close()

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the seam execute_cell drives
    # ------------------------------------------------------------------
    def begin_cell(
        self,
        campaign_id: Optional[str],
        spec: ScenarioSpec,
        seed: int,
        backend: ExecutionBackend,
    ) -> CellHandle:
        """Register (or re-open) one cell and pin its shard resolution.

        ``requested_shards`` records the backend's *policy* ("auto" for
        an autotuning ``ProcessShardBackend(shards=None)``, the number
        otherwise); ``resolved_shards`` records the *decision*, which
        every later sitting reuses.
        """
        requested = getattr(backend, "shards", None)
        row = self.history.begin_campaign_cell(
            campaign_id=campaign_id or new_campaign_id(),
            spec_hash=spec_hash(spec),
            scenario=spec.name,
            seed=seed,
            backend=backend.name,
            requested_shards="auto" if requested is None else str(requested),
            resolved_shards=backend.resolve(spec),
            spec_json=spec.canonical_json(),
        )
        return CellHandle(
            cell_id=int(row["id"]),
            campaign_id=str(row["campaign_id"]),
            spec_hash=str(row["spec_hash"]),
            seed=int(row["seed"]),
            resolved_shards=int(row["resolved_shards"]),
            status=str(row["status"]),
        )

    def completed_shards(self, cell: CellHandle) -> Dict[int, ShardResult]:
        """Shards of the cell already durable (newest attempt each)."""
        results: Dict[int, ShardResult] = {}
        for row in self.history.campaign_shard_rows(cell.cell_id):
            result = ShardResult.from_json(json.loads(row["result"]))
            results[result.shard_id] = result
        return results

    def record_shard(self, cell: CellHandle, result: ShardResult) -> None:
        """Persist one completed shard the moment it lands."""
        self.history.record_campaign_shard(
            cell_id=cell.cell_id,
            campaign_id=cell.campaign_id,
            spec_hash=cell.spec_hash,
            seed=cell.seed,
            shard_id=result.shard_id,
            attempt=result.attempt,
            worker=result.worker,
            trace_digest=result.payload.get("trace_digest"),
            result_json=json.dumps(result.to_json(), sort_keys=True),
        )

    def finish_cell(self, cell: CellHandle, report: CampaignReport) -> None:
        """Mark the cell complete with its merged determinism digests."""
        self.history.finish_campaign_cell(
            cell_id=cell.cell_id,
            telemetry_digest=report.telemetry_digest,
            span_digest=report.span_digest or None,
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def cells(self, campaign_id: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.history.campaign_cells(campaign_id)

    def status(self, campaign_id: str) -> Dict[str, Any]:
        """Progress of one campaign: per-cell AND per-shard state.

        Each cell carries a ``shards`` list with one entry per planned
        shard — ``state`` (``"complete"`` / ``"missing"``), the number
        of recorded ``attempts`` (retries after worker loss count), and
        the worker/timestamp of the newest durable attempt — so a
        partially checkpointed campaign reads as *which* shards remain,
        not just how many.  This is the one status-assembly helper; the
        ``repro.campaign status`` CLI and the service's
        ``GET /campaigns/{id}`` endpoint both render exactly this dict.
        """
        cells: List[Dict[str, Any]] = []
        for row in self.history.campaign_cells(campaign_id):
            log = self.history.campaign_shard_log(int(row["id"]))
            per_shard: Dict[int, Dict[str, Any]] = {}
            for entry in log:
                shard = per_shard.setdefault(int(entry["shard_id"]), {
                    "attempts": 0,
                })
                # ``attempt`` is the 0-based try the durable result
                # came from (a shard retried after worker loss lands
                # with attempt > 0), so attempt+1 is how many tries the
                # shard took — lost attempts included.
                shard["attempts"] = max(
                    shard["attempts"], int(entry["attempt"]) + 1
                )
                shard["worker"] = entry["worker"]
                shard["recorded_at"] = entry["recorded_at"]
            resolved = int(row["resolved_shards"])
            shards = []
            for shard_id in range(resolved):
                done = per_shard.get(shard_id)
                shards.append({
                    "shard_id": shard_id,
                    "state": "complete" if done else "missing",
                    "attempts": done["attempts"] if done else 0,
                    "worker": done["worker"] if done else None,
                    "recorded_at": done["recorded_at"] if done else None,
                })
            cells.append({
                "scenario": row["scenario"],
                "seed": row["seed"],
                "spec_hash": row["spec_hash"],
                "backend": row["backend"],
                "requested_shards": row["requested_shards"],
                "resolved_shards": resolved,
                "completed_shards": len(per_shard),
                "shards": shards,
                "status": row["status"],
                "telemetry_digest": row["telemetry_digest"],
                "span_digest": row["span_digest"],
            })
        done = sum(1 for cell in cells if cell["status"] == "complete")
        return {
            "campaign_id": campaign_id,
            "cells": cells,
            "cells_total": len(cells),
            "cells_complete": done,
            "complete": bool(cells) and done == len(cells),
        }

    def campaigns(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Known campaigns, newest first, with aggregate progress."""
        seen: Dict[str, Dict[str, Any]] = {}
        for row in self.history.campaign_cells(limit=limit):
            entry = seen.setdefault(str(row["campaign_id"]), {
                "campaign_id": row["campaign_id"],
                "created_at": row["created_at"],
                "cells_total": 0,
                "cells_complete": 0,
            })
            entry["cells_total"] += 1
            if row["status"] == "complete":
                entry["cells_complete"] += 1
            entry["created_at"] = min(entry["created_at"], row["created_at"])
        return list(seen.values())


def resume_campaign(
    campaign_id: str,
    store: Union[RunHistory, str, CampaignCheckpoint],
    backend: Optional[ExecutionBackend] = None,
) -> List[CampaignReport]:
    """Re-drive every cell of a checkpointed campaign to completion.

    Cells are reconstructed from the canonical spec JSON stored at
    ``begin_cell`` time and re-executed through THE orchestration path
    with the checkpoint attached: durable shards are skipped, missing
    ones run on ``backend`` (serial by default), and already-complete
    cells merge purely from the store.  Returns one report per cell in
    grid order — with digests byte-identical to an uninterrupted run.
    """
    from .core import execute_cell  # cycle: core drives the checkpoint

    checkpoint = (
        store if isinstance(store, CampaignCheckpoint)
        else CampaignCheckpoint(store)
    )
    owned = checkpoint is not store
    try:
        rows = checkpoint.cells(campaign_id)
        if not rows:
            raise KeyError(f"unknown campaign: {campaign_id!r}")
        reports: List[CampaignReport] = []
        for row in rows:
            spec = ScenarioSpec.from_json(json.loads(row["spec"]))
            reports.append(execute_cell(
                spec,
                int(row["seed"]),
                backend=backend,
                checkpoint=checkpoint,
                campaign_id=campaign_id,
            ))
        return reports
    finally:
        if owned:
            checkpoint.close()
