"""CampaignReport: the one result schema every execution backend fills.

A report describes one (scenario, seed) campaign cell however it was
executed — single kernel or N worker processes.  Counters, tallies, and
detection accounting are merged across shards (exact sums: every member
lives on exactly one shard); the reproducibility witnesses are

* ``telemetry_digest`` — hash of the *shard-invariant* telemetry core
  (:func:`repro.runtime.telemetry.merge_digest`), identical between a
  serial run and any sharding of it;
* ``shard_trace_digests`` — one merged-event-stream digest per shard,
  each reproducible across reruns (the serial report carries exactly
  one, equal to the old ``FleetReport.trace_digest``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs.spans import merge_span_blocks
from ..runtime.telemetry import merge_digest, merge_summaries


@dataclass
class CampaignReport:
    """Outcome of one (scenario, seed) cell under some backend."""

    scenario: str
    seed: int
    backend: str
    shards: int
    members: int
    duration: float
    dispatched: int
    #: End-to-end wall time for the cell (includes worker spawn for
    #: sharded runs); per-shard simulation walls are in
    #: :attr:`shard_wall_seconds`.
    wall_seconds: float
    faulty: List[str] = field(default_factory=list)
    detected: List[str] = field(default_factory=list)
    false_alarms: List[str] = field(default_factory=list)
    monitored_clean: int = 0
    errors_by_suo: Dict[str, int] = field(default_factory=dict)
    shard_trace_digests: List[str] = field(default_factory=list)
    shard_wall_seconds: List[float] = field(default_factory=list)
    trace_records: int = 0
    telemetry_summary: Dict[str, Any] = field(default_factory=dict)
    telemetry_digest: str = ""
    profile_mix: Dict[str, int] = field(default_factory=dict)
    #: Merged causal-span block (:meth:`repro.obs.spans.SpanRecorder.
    #: mergeable`) — empty unless the spec set ``record_spans``.  Its
    #: ``forest_digest`` is the span-tree analogue of
    #: :attr:`telemetry_digest`: serial and sharded runs agree on it.
    spans: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def events_per_sec(self) -> float:
        return self.dispatched / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def detection_rate(self) -> float:
        """Detected / injected (vacuously 1.0 for zero-fault cells)."""
        if not self.faulty:
            return 1.0
        return len(self.detected) / len(self.faulty)

    @property
    def false_alarm_rate(self) -> float:
        """False alarms / monitored fault-free members (0.0 when none)."""
        if self.monitored_clean <= 0:
            return 0.0
        return len(self.false_alarms) / self.monitored_clean

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict (derived rates included)."""
        data = asdict(self)
        data["detection_rate"] = self.detection_rate
        data["false_alarm_rate"] = self.false_alarm_rate
        data["events_per_sec"] = self.events_per_sec
        return data

    @property
    def span_digest(self) -> str:
        """The shard-invariant span-forest digest ("" without spans)."""
        return self.spans.get("forest_digest", "")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def row(self) -> List[Any]:
        """One summary-table row (see :func:`format_campaign_table`)."""
        return [
            self.scenario,
            self.seed,
            self.backend,
            self.members,
            f"{self.duration:.0f}",
            self.dispatched,
            self.telemetry_summary.get("events_total", 0),
            len(self.faulty),
            len(self.detected),
            len(self.false_alarms),
            self.telemetry_digest[:12],
        ]


#: Header matching :meth:`CampaignReport.row`.
CAMPAIGN_TABLE_HEADER = [
    "scenario", "seed", "backend", "suos", "sim s", "dispatched",
    "suo events", "faulty", "detected", "false alarms", "telemetry digest",
]


def format_campaign_table(reports: Sequence[CampaignReport]) -> str:
    """Render campaign results as an aligned text table."""
    rows = [CAMPAIGN_TABLE_HEADER] + [report.row() for report in reports]
    widths = [
        max(len(str(row[i])) for row in rows)
        for i in range(len(CAMPAIGN_TABLE_HEADER))
    ]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def merge_shard_results(
    scenario: str,
    seed: int,
    backend: str,
    shards: int,
    results: Sequence[Dict[str, Any]],
    wall_seconds: float,
    reservoir: int = 512,
) -> CampaignReport:
    """Fold per-shard worker results into one :class:`CampaignReport`.

    ``results`` must arrive in shard order (shard 0 first); every field
    except the telemetry quantiles merges exactly.  Membership sets are
    disjoint by construction, so list merges concatenate then sort.
    """
    if not results:
        raise ValueError("no shard results to merge")
    summary = merge_summaries(
        [result["summary"] for result in results], reservoir=reservoir
    )
    summary.get("latency", {}).pop("samples", None)
    summary.get("recovery", {}).get("ttr", {}).pop("samples", None)
    for block in summary.get("diagnosis", {}).get("ttr", {}).values():
        block.pop("samples", None)
    span_blocks = [
        result["spans"] for result in results if result.get("spans")
    ]
    errors: Dict[str, int] = {}
    for result in results:
        errors.update(result["errors_by_suo"])
    profile_mix: Dict[str, int] = {}
    for result in results:
        for name, count in result["profile_mix"].items():
            profile_mix[name] = profile_mix.get(name, 0) + count
    return CampaignReport(
        scenario=scenario,
        seed=seed,
        backend=backend,
        shards=shards,
        members=sum(result["members"] for result in results),
        duration=max(result["duration"] for result in results),
        dispatched=sum(result["dispatched"] for result in results),
        wall_seconds=wall_seconds,
        faulty=sorted(suo for result in results for suo in result["faulty"]),
        detected=sorted(suo for result in results for suo in result["detected"]),
        false_alarms=sorted(
            suo for result in results for suo in result["false_alarms"]
        ),
        monitored_clean=sum(result["monitored_clean"] for result in results),
        errors_by_suo={key: errors[key] for key in sorted(errors)},
        shard_trace_digests=[result["trace_digest"] for result in results],
        shard_wall_seconds=[result["wall_seconds"] for result in results],
        trace_records=sum(result["trace_records"] for result in results),
        telemetry_summary=summary,
        telemetry_digest=merge_digest(summary),
        profile_mix={key: profile_mix[key] for key in sorted(profile_mix)},
        spans=merge_span_blocks(span_blocks) if span_blocks else {},
    )
