"""Distributed campaign execution: shard plans dispatched to workers.

The PR 9 tentpole.  A :class:`DistributedBackend` plugs a *shard
executor* — the thing that runs ONE plan attempt somewhere — into the
same orchestration path every backend shares
(:func:`repro.campaign.core.execute_cell`), and adds the fault
tolerance a multi-worker run needs:

* **worker-loss detection** — the per-process executor gives every
  shard attempt its own worker process and a pipe; the worker
  heartbeats from a side thread while the shard simulates, and the
  parent treats a silent pipe (no heartbeat within
  ``heartbeat_timeout``) or an EOF (the process died) as a lost
  worker, never as a lost campaign;
* **bounded retry with reassignment** — :meth:`DistributedBackend.
  submit` re-runs a lost shard up to ``max_attempts`` times, each
  attempt on a fresh worker (a new process, or the next address in a
  socket worker pool), and raises :class:`ShardExhaustedError` only
  when every attempt died;
* **determinism under faults** — a shard's payload is a pure function
  of its plan, so which attempt finally lands it cannot perturb the
  merged ``telemetry_digest``; :class:`WorkerFaultInjector` makes that
  claim testable in CI by deterministically killing chosen shards on
  their early attempts.

Three executors ship:

:class:`InlineExecutor`
    Runs plans in-process; injected kills surface as
    :class:`WorkerLostError`.  The cheap way to exercise retry and
    checkpoint logic (and the fallback for 1-CPU containers).
:class:`ProcessWorkerExecutor`
    One OS process per shard attempt, heartbeat over a pipe, injected
    kills are *real* (``os._exit``) — the loss path CI verifies.
:class:`SocketWorkerExecutor` / :class:`ShardWorkerServer`
    Newline-delimited JSON over TCP using the plan wire form
    (:meth:`~repro.scenarios.plan.ScenarioPlan.to_json`), so a worker
    on another host — ``python -m repro.campaign worker`` — executes
    the byte-identical placement decisions.

Combined with a :class:`~repro.campaign.checkpoint.CampaignCheckpoint`
(every completed shard durable as it lands) this is the ROADMAP
"beyond one box" story: kill the driver mid-campaign, ``resume`` on
any box, get the digest an uninterrupted run would have produced.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, Union

import multiprocessing

from ..scenarios.plan import ScenarioPlan
from ..scenarios.spec import ScenarioSpec
from .backends import (
    ExecutorBackend,
    ResultSink,
    ShardResult,
    execute_plan,
    resolve_shards,
)

__all__ = [
    "DistributedBackend",
    "InlineExecutor",
    "ProcessWorkerExecutor",
    "ShardExecutor",
    "ShardExhaustedError",
    "ShardWorkerServer",
    "SocketWorkerExecutor",
    "WorkerFaultInjector",
    "WorkerLostError",
]

#: Exit code an injected kill dies with (distinguishable from crashes
#: in worker logs; the parent treats any silent death the same way).
KILL_EXIT_CODE = 87


class WorkerLostError(RuntimeError):
    """One shard attempt's worker died or went silent; retryable."""


class ShardExhaustedError(RuntimeError):
    """Every allowed attempt for one shard lost its worker."""


@dataclass(frozen=True)
class WorkerFaultInjector:
    """Deterministic worker killer for fault-tolerance tests.

    Kills the worker of every shard in ``kill_shards`` on its first
    ``kills`` attempts (attempts count from 0), then lets retries
    succeed.  A pure function of ``(shard_id, attempt)`` — no clocks,
    no randomness — so a CI failure replays exactly.  Picklable, so it
    rides into spawned worker processes.
    """

    kill_shards: Tuple[int, ...] = ()
    kills: int = 1

    def should_kill(self, shard_id: int, attempt: int) -> bool:
        return shard_id in self.kill_shards and attempt < self.kills


class ShardExecutor(Protocol):
    """Runs one shard-plan attempt somewhere; raises
    :class:`WorkerLostError` when that somewhere dies."""

    name: str

    def run_attempt(self, plan: ScenarioPlan, attempt: int) -> ShardResult: ...


# ----------------------------------------------------------------------
# in-process executor
# ----------------------------------------------------------------------
class InlineExecutor:
    """Run shard attempts in the driver process.

    Functionally the serial path with the distributed seams attached:
    injected kills raise :class:`WorkerLostError`, so retry, attempt
    provenance, and checkpoint behaviour are all exercised without
    process machinery — including on 1-CPU containers.
    """

    name = "inline"

    def __init__(self, fault_injector: Optional[WorkerFaultInjector] = None):
        self.fault_injector = fault_injector

    def run_attempt(self, plan: ScenarioPlan, attempt: int) -> ShardResult:
        if (
            self.fault_injector is not None
            and self.fault_injector.should_kill(plan.shard_id, attempt)
        ):
            raise WorkerLostError(
                f"shard {plan.shard_id} attempt {attempt}: injected loss"
            )
        return ShardResult(
            shard_id=plan.shard_id, payload=execute_plan(plan),
            attempt=attempt, worker="inline",
        )


# ----------------------------------------------------------------------
# per-process executor (heartbeat + real kills)
# ----------------------------------------------------------------------
def _process_worker_main(
    conn,
    plan: ScenarioPlan,
    attempt: int,
    injector: Optional[WorkerFaultInjector],
    heartbeat_interval: float,
) -> None:
    """Worker-process body: heartbeat from a side thread, simulate the
    shard, send the payload home.  Module-level so every start method
    can ship it by reference."""
    stop = threading.Event()
    send_lock = threading.Lock()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            with send_lock:
                try:
                    conn.send(("heartbeat", plan.shard_id))
                except OSError:
                    return

    threading.Thread(target=beat, daemon=True).start()
    if injector is not None and injector.should_kill(plan.shard_id, attempt):
        # A real kill: no cleanup, no goodbye — the parent must notice
        # from the pipe going dead, exactly like a crashed host.
        os._exit(KILL_EXIT_CODE)
    payload = execute_plan(plan)
    stop.set()
    with send_lock:
        conn.send(("result", payload))
    conn.close()


class ProcessWorkerExecutor:
    """One worker process per shard attempt, loss detected via pipe.

    The worker heartbeats every ``heartbeat_interval`` seconds while
    the shard simulates; the parent raises :class:`WorkerLostError` on
    pipe EOF (the process died — e.g. an injected ``os._exit``) or
    when nothing arrives within ``heartbeat_timeout`` (the process
    hung).  A retry is automatically a reassignment: the next attempt
    gets a brand-new process.
    """

    name = "process"

    def __init__(
        self,
        fault_injector: Optional[WorkerFaultInjector] = None,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 30.0,
        start_method: Optional[str] = None,
    ) -> None:
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed the interval")
        self.fault_injector = fault_injector
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.start_method = start_method

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    def run_attempt(self, plan: ScenarioPlan, attempt: int) -> ShardResult:
        ctx = self._context()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_process_worker_main,
            args=(send_conn, plan, attempt, self.fault_injector,
                  self.heartbeat_interval),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        try:
            while True:
                if not recv_conn.poll(self.heartbeat_timeout):
                    raise WorkerLostError(
                        f"shard {plan.shard_id} attempt {attempt}: no "
                        f"heartbeat for {self.heartbeat_timeout:.1f}s "
                        f"(pid {proc.pid})"
                    )
                try:
                    kind, value = recv_conn.recv()
                except (EOFError, OSError):
                    raise WorkerLostError(
                        f"shard {plan.shard_id} attempt {attempt}: worker "
                        f"pid {proc.pid} died (exit {proc.exitcode})"
                    )
                if kind == "result":
                    return ShardResult(
                        shard_id=plan.shard_id, payload=value,
                        attempt=attempt, worker=f"process:{proc.pid}",
                    )
        finally:
            recv_conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)


# ----------------------------------------------------------------------
# socket executor (remote workers)
# ----------------------------------------------------------------------
class ShardWorkerServer:
    """A remote shard worker: accepts plan JSON, returns payload JSON.

    Protocol is one newline-delimited JSON request per connection —
    ``{"plan": <plan.to_json()>, "attempt": n}`` — answered with
    ``{"ok": true, "payload": ..., "worker": ...}`` (or ``"ok": false``
    plus an error).  ``port=0`` binds an ephemeral port; read
    :attr:`address` after construction.  A fault injector makes the
    server drop matching connections without replying — the remote
    analogue of a worker dying mid-shard.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_injector: Optional[WorkerFaultInjector] = None,
    ) -> None:
        self.fault_injector = fault_injector
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.2)
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        name = self._sock.getsockname()
        return (name[0], name[1])

    def serve(self, max_requests: Optional[int] = None) -> int:
        """Serve until closed (or ``max_requests`` answered)."""
        served = 0
        while not self._closed and (
            max_requests is None or served < max_requests
        ):
            try:
                conn, _peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                served += self._handle(conn)
        return served

    def serve_in_background(
        self, max_requests: Optional[int] = None
    ) -> threading.Thread:
        thread = threading.Thread(
            target=self.serve, kwargs={"max_requests": max_requests},
            daemon=True,
        )
        thread.start()
        return thread

    def _handle(self, conn: socket.socket) -> int:
        stream = conn.makefile("rwb")
        line = stream.readline()
        if not line:
            return 0
        request = json.loads(line.decode("utf-8"))
        plan = ScenarioPlan.from_json(request["plan"])
        attempt = int(request.get("attempt", 0))
        if (
            self.fault_injector is not None
            and self.fault_injector.should_kill(plan.shard_id, attempt)
        ):
            # Drop the connection unanswered: to the client this is
            # indistinguishable from the worker host dying mid-shard.
            return 1
        try:
            response = {
                "ok": True,
                "payload": execute_plan(plan),
                "worker": f"socket:{os.getpid()}",
            }
        except Exception as exc:  # report, don't kill the server
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        stream.write((json.dumps(response) + "\n").encode("utf-8"))
        stream.flush()
        return 1

    def close(self) -> None:
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "ShardWorkerServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


Address = Tuple[str, int]


class SocketWorkerExecutor:
    """Dispatch shard attempts to :class:`ShardWorkerServer` workers.

    ``addresses`` is one ``(host, port)`` or a pool of them; attempts
    rotate through the pool by ``shard_id + attempt``, so a retry after
    a loss lands on a *different* worker when more than one exists —
    shard reassignment, deterministically.
    """

    name = "socket"

    def __init__(
        self,
        addresses: Union[Address, Sequence[Address]],
        timeout: float = 60.0,
    ) -> None:
        if (
            isinstance(addresses, tuple)
            and len(addresses) == 2
            and isinstance(addresses[0], str)
        ):
            addresses = [addresses]
        self.addresses: List[Address] = [
            (str(host), int(port)) for host, port in addresses
        ]
        if not self.addresses:
            raise ValueError("need at least one worker address")
        self.timeout = timeout

    def run_attempt(self, plan: ScenarioPlan, attempt: int) -> ShardResult:
        host, port = self.addresses[
            (plan.shard_id + attempt) % len(self.addresses)
        ]
        where = f"{host}:{port}"
        try:
            with socket.create_connection(
                (host, port), timeout=self.timeout
            ) as conn:
                stream = conn.makefile("rwb")
                request = {"plan": plan.to_json(), "attempt": attempt}
                stream.write((json.dumps(request) + "\n").encode("utf-8"))
                stream.flush()
                line = stream.readline()
        except OSError as exc:
            raise WorkerLostError(
                f"shard {plan.shard_id} attempt {attempt}: worker {where} "
                f"unreachable ({exc})"
            )
        if not line:
            raise WorkerLostError(
                f"shard {plan.shard_id} attempt {attempt}: worker {where} "
                "closed the connection mid-shard"
            )
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise WorkerLostError(
                f"shard {plan.shard_id} attempt {attempt}: worker {where} "
                f"failed: {response.get('error', 'unknown error')}"
            )
        return ShardResult(
            shard_id=plan.shard_id,
            payload=response["payload"],
            attempt=attempt,
            worker=response.get("worker", f"socket:{where}"),
        )


# ----------------------------------------------------------------------
# the backend
# ----------------------------------------------------------------------
class DistributedBackend(ExecutorBackend):
    """Campaign execution over a pluggable shard executor, with bounded
    retry and concurrent dispatch.

    ``shards=None`` autotunes via :func:`~repro.campaign.backends.
    resolve_shards` (the decision lands in the checkpoint row like any
    other backend's).  ``max_attempts`` bounds how many workers one
    shard may consume before the cell fails loudly with
    :class:`ShardExhaustedError` — a lost worker is retryable, a shard
    that kills every worker it touches is a bug to surface, not mask.
    """

    def __init__(
        self,
        executor: Optional[ShardExecutor] = None,
        shards: Optional[int] = 2,
        max_attempts: int = 3,
        parallelism: Optional[int] = None,
    ) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1 (or None to autotune)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if parallelism is not None and parallelism < 1:
            raise ValueError("parallelism must be >= 1 (or None)")
        self.executor: ShardExecutor = executor or ProcessWorkerExecutor()
        self.shards = shards
        self.max_attempts = max_attempts
        self.parallelism = parallelism

    @property
    def name(self) -> str:
        label = "auto" if self.shards is None else str(self.shards)
        return f"distributed-{self.executor.name}[{label}]"

    def resolve(self, spec: ScenarioSpec) -> int:
        if self.shards is not None:
            return self.shards
        return resolve_shards(spec.members)

    def submit(self, plan: ScenarioPlan) -> ShardResult:
        last: Optional[WorkerLostError] = None
        for attempt in range(self.max_attempts):
            try:
                return self.executor.run_attempt(plan, attempt)
            except WorkerLostError as exc:
                last = exc
        raise ShardExhaustedError(
            f"shard {plan.shard_id}: lost {self.max_attempts} worker(s); "
            f"last: {last}"
        ) from last

    def submit_all(
        self,
        plans: Sequence[ScenarioPlan],
        on_result: Optional[ResultSink] = None,
    ) -> List[ShardResult]:
        if len(plans) <= 1 or self.parallelism == 1:
            return super().submit_all(plans, on_result=on_result)
        workers = self.parallelism or min(
            len(plans), max(2, os.cpu_count() or 2)
        )
        results: List[ShardResult] = []
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(self.submit, plan) for plan in plans]
            # as_completed streams shards home as they land; on_result
            # (the checkpoint write) runs here on the driver thread, so
            # the SQLite connection never crosses threads.  An exhausted
            # shard must not discard its siblings: every completed shard
            # is still delivered (and so checkpointed) before the first
            # error propagates — that durability is exactly what makes
            # the subsequent resume cheap.
            for future in as_completed(futures):
                try:
                    result = future.result()
                except BaseException as exc:  # noqa: BLE001 — re-raised
                    if first_error is None:
                        first_error = exc
                    continue
                if on_result is not None:
                    on_result(result)
                results.append(result)
        if first_error is not None:
            raise first_error
        results.sort(key=lambda result: result.shard_id)
        return results
