"""Static-analysis warning prioritization (Sect. 4.7, [2]).

"This includes the use of code analysis to prioritize the warnings of a
software inspection tool such as QA-C."  Boogerd & Moonen's idea: rank
inspection warnings by the *execution likelihood* of the code they flag —
a warning in code that actually runs in the field matters more than one
in dead code.

The reproduction: generate a synthetic warning population over the TV's
block map, estimate execution likelihood per block with a noisy static
analysis, rank, and compare the *relevant-warning density* in the top of
the list against file-order and random baselines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..tv.software import SoftwareBuild


@dataclass(frozen=True)
class InspectionWarning:
    """One static-analysis finding."""

    warning_id: int
    block: int
    module: str
    #: Ground truth: does this warning flag a real defect?
    is_defect: bool


@dataclass
class PrioritizationResult:
    """Relevant-warning density at cutoffs, per ordering strategy."""

    strategy: str
    precision_at: Dict[int, float]
    total_relevant: int
    total_warnings: int


class ExecutionLikelihoodAnalyzer:
    """A 'static profiler': estimates how likely each block runs in use.

    Ground truth comes from the build's activation model (kernel-core
    always runs, cold features never do); the static estimate adds seeded
    noise so the ranking is realistically imperfect.
    """

    TRUE_LIKELIHOOD = {
        "kernel_core": 1.0,
        "drivers_var": 0.4,
        "cold_features": 0.0,
    }
    HANDLER_LIKELIHOOD = 0.6
    LOGIC_LIKELIHOOD = 0.5
    FAULT_LIKELIHOOD = 0.3
    NOISE = 0.15

    def __init__(self, build: SoftwareBuild, seed: int = 0) -> None:
        self.build = build
        self.rng = random.Random(seed)

    def true_likelihood(self, module: str) -> float:
        if module in self.TRUE_LIKELIHOOD:
            return self.TRUE_LIKELIHOOD[module]
        if module.startswith("handler_"):
            return self.HANDLER_LIKELIHOOD
        if module.startswith("fault_"):
            return self.FAULT_LIKELIHOOD
        return self.LOGIC_LIKELIHOOD

    def estimate(self, module: str) -> float:
        """Noisy static estimate of the module's execution likelihood."""
        truth = self.true_likelihood(module)
        noisy = truth + self.rng.gauss(0.0, self.NOISE)
        return max(0.0, min(1.0, noisy))


class WarningGenerator:
    """Generates a seeded synthetic warning population."""

    def __init__(
        self,
        build: SoftwareBuild,
        seed: int = 0,
        warning_count: int = 500,
        defect_rate: float = 0.25,
    ) -> None:
        self.build = build
        self.seed = seed
        self.warning_count = warning_count
        self.defect_rate = defect_rate

    def generate(self) -> List[InspectionWarning]:
        rng = random.Random(self.seed)
        modules = list(self.build.modules.values())
        weights = [m.size for m in modules]
        warnings: List[InspectionWarning] = []
        for warning_id in range(self.warning_count):
            module = rng.choices(modules, weights=weights)[0]
            block = module.start + rng.randrange(module.size)
            warnings.append(
                InspectionWarning(
                    warning_id=warning_id,
                    block=block,
                    module=module.name,
                    is_defect=rng.random() < self.defect_rate,
                )
            )
        return warnings


class WarningPrioritizer:
    """Ranks warnings and evaluates orderings against ground truth.

    A warning is *relevant* when it flags a real defect in code that runs
    in the field (likelihood above ``relevance_threshold``): those are the
    warnings worth a developer's inspection minute.
    """

    def __init__(
        self,
        build: SoftwareBuild,
        analyzer: Optional[ExecutionLikelihoodAnalyzer] = None,
        relevance_threshold: float = 0.3,
        seed: int = 0,
    ) -> None:
        self.build = build
        self.analyzer = analyzer or ExecutionLikelihoodAnalyzer(build, seed=seed)
        self.relevance_threshold = relevance_threshold
        self.seed = seed

    # ------------------------------------------------------------------
    def is_relevant(self, warning: InspectionWarning) -> bool:
        truth = self.analyzer.true_likelihood(warning.module)
        return warning.is_defect and truth >= self.relevance_threshold

    def order_by_likelihood(
        self, warnings: Sequence[InspectionWarning]
    ) -> List[InspectionWarning]:
        return sorted(
            warnings,
            key=lambda w: (-self.analyzer.estimate(w.module), w.warning_id),
        )

    def order_by_file(
        self, warnings: Sequence[InspectionWarning]
    ) -> List[InspectionWarning]:
        """The baseline developers actually use: the tool's report order,
        grouped alphabetically by source file and by line within a file."""
        return sorted(warnings, key=lambda w: (w.module, w.block, w.warning_id))

    def order_randomly(
        self, warnings: Sequence[InspectionWarning]
    ) -> List[InspectionWarning]:
        shuffled = list(warnings)
        random.Random(self.seed + 1).shuffle(shuffled)
        return shuffled

    # ------------------------------------------------------------------
    def evaluate(
        self,
        warnings: Sequence[InspectionWarning],
        strategy: str,
        cutoffs: Sequence[int] = (10, 25, 50, 100),
    ) -> PrioritizationResult:
        orderers = {
            "likelihood": self.order_by_likelihood,
            "file_order": self.order_by_file,
            "random": self.order_randomly,
        }
        if strategy not in orderers:
            raise ValueError(f"unknown strategy {strategy!r}")
        ordered = orderers[strategy](warnings)
        relevant_flags = [self.is_relevant(w) for w in ordered]
        precision_at = {}
        for cutoff in cutoffs:
            top = relevant_flags[:cutoff]
            precision_at[cutoff] = sum(top) / len(top) if top else 0.0
        return PrioritizationResult(
            strategy=strategy,
            precision_at=precision_at,
            total_relevant=sum(relevant_flags),
            total_warnings=len(ordered),
        )
