"""Stress testing: artificial resource takeaway (Sect. 4.7, TASS).

"The stress testing approach of TASS artificially takes away shared
resources, such as CPU or bus bandwidth, to simulate the occurrence of
errors or the addition of an additional resource user.  [...]  A
so-called CPU eater, which consumes CPU cycles at the application level
in software, is already included in the current development software and
can be activated by system testers."

* :class:`CpuEater`          — a competing task eating a configurable
  fraction of one processor;
* :class:`BandwidthTakeaway` — shrinks bus bandwidth / memory service rate
  for a window, then restores it;
* :class:`StressCampaign`    — applies scenarios to a TV and tabulates the
  effect on deadline misses and frame quality (the E7 table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..platform.bus import Bus
from ..platform.memory import MemoryArbiter
from ..platform.soc import SoC
from ..platform.task import PeriodicTask
from ..sim.kernel import Kernel
from ..tv.tvset import TVSet


class CpuEater:
    """An application-level task that burns cycles on one processor."""

    PERIOD = 1.0

    def __init__(self, soc: SoC, processor: str, name: str = "cpu-eater") -> None:
        self.soc = soc
        self.processor = processor
        self.name = name
        self._task: Optional[PeriodicTask] = None
        self._load = 0.0

    @property
    def active(self) -> bool:
        return self._task is not None

    @property
    def load(self) -> float:
        return self._load

    def start(self, load: float) -> None:
        """Consume ``load`` (0..1) of the target processor."""
        if not 0.0 < load < 1.0:
            raise ValueError("load must be in (0, 1)")
        self.stop()
        self._load = load
        speed = self.soc.pool.get(self.processor).speed
        self._task = self.soc.scheduler.add_task(
            self.name,
            self.processor,
            period=self.PERIOD,
            work=load * self.PERIOD * speed,
            priority=-1,  # testers run the eater at high priority on purpose
        )

    def set_load(self, load: float) -> None:
        self.start(load)

    def stop(self) -> None:
        if self._task is not None:
            self.soc.scheduler.remove_task(self.name)
            self._task = None
            self._load = 0.0


class BandwidthTakeaway:
    """Temporarily removes bus bandwidth and/or memory service rate."""

    def __init__(self, kernel: Kernel, bus: Bus, arbiter: MemoryArbiter) -> None:
        self.kernel = kernel
        self.bus = bus
        self.arbiter = arbiter
        self._saved_bus: Optional[float] = None
        self._saved_mem: Optional[float] = None

    def take(self, fraction: float, duration: Optional[float] = None) -> None:
        """Remove ``fraction`` (0..1) of bandwidth; auto-restore after
        ``duration`` if given."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        if self._saved_bus is None:
            self._saved_bus = self.bus.bandwidth
            self._saved_mem = self.arbiter.words_per_time
        self.bus.set_bandwidth(self._saved_bus * (1.0 - fraction))
        self.arbiter.words_per_time = self._saved_mem * (1.0 - fraction)
        if duration is not None:
            self.kernel.schedule(duration, self.restore, name="bw-restore")

    def restore(self) -> None:
        if self._saved_bus is not None:
            self.bus.set_bandwidth(self._saved_bus)
            self.arbiter.words_per_time = self._saved_mem
            self._saved_bus = None
            self._saved_mem = None


@dataclass
class StressScenario:
    """One stress configuration to evaluate."""

    name: str
    cpu_load: float = 0.0
    bandwidth_fraction: float = 0.0
    target_processor: str = "cpu0"


@dataclass
class StressOutcome:
    """Measured effect of one scenario."""

    scenario: str
    miss_rate: float
    mean_frame_quality: float
    degraded_fraction: float


class StressCampaign:
    """Applies stress scenarios to fresh TVs and tabulates outcomes."""

    def __init__(
        self,
        seed: int = 0,
        warmup: float = 30.0,
        measure: float = 150.0,
    ) -> None:
        self.seed = seed
        self.warmup = warmup
        self.measure = measure

    def run_scenario(self, scenario: StressScenario) -> StressOutcome:
        tv = TVSet(seed=self.seed)
        tv.press("power")
        tv.run(self.warmup)
        eater: Optional[CpuEater] = None
        if scenario.cpu_load > 0:
            eater = CpuEater(tv.soc, scenario.target_processor)
            eater.start(scenario.cpu_load)
        if scenario.bandwidth_fraction > 0:
            takeaway = BandwidthTakeaway(tv.kernel, tv.soc.bus, tv.soc.arbiter)
            takeaway.take(scenario.bandwidth_fraction)
        start = tv.kernel.now
        tv.run(self.measure)
        tasks = tv.video.tasks
        jobs = sum(t.stats.jobs for t in tasks)
        misses = sum(t.stats.misses for t in tasks)
        return StressOutcome(
            scenario=scenario.name,
            miss_rate=(misses / jobs) if jobs else 0.0,
            mean_frame_quality=tv.video.mean_quality(since=start),
            degraded_fraction=tv.video.degraded_fraction(since=start),
        )

    def run(self, scenarios: List[StressScenario]) -> List[StressOutcome]:
        return [self.run_scenario(s) for s in scenarios]


#: The default E7 sweep: nominal, then increasing CPU eating, then
#: bandwidth takeaway, then combined.
DEFAULT_SCENARIOS = [
    StressScenario(name="nominal"),
    StressScenario(name="eat25", cpu_load=0.25),
    StressScenario(name="eat50", cpu_load=0.50),
    StressScenario(name="eat70", cpu_load=0.70),
    StressScenario(name="bw30", bandwidth_fraction=0.30),
    StressScenario(name="bw60", bandwidth_fraction=0.60),
    StressScenario(name="eat50+bw30", cpu_load=0.50, bandwidth_fraction=0.30),
]
