"""Development-time dependability tools (Sect. 4.7)."""

from .fmea import ArchitectureFmea, FailureMode, FmeaEntry
from .inspection import (
    ExecutionLikelihoodAnalyzer,
    InspectionWarning,
    PrioritizationResult,
    WarningGenerator,
    WarningPrioritizer,
)
from .stress import (
    DEFAULT_SCENARIOS,
    BandwidthTakeaway,
    CpuEater,
    StressCampaign,
    StressOutcome,
    StressScenario,
)

__all__ = [
    "ArchitectureFmea",
    "BandwidthTakeaway",
    "CpuEater",
    "DEFAULT_SCENARIOS",
    "ExecutionLikelihoodAnalyzer",
    "FailureMode",
    "FmeaEntry",
    "InspectionWarning",
    "PrioritizationResult",
    "StressCampaign",
    "StressOutcome",
    "StressScenario",
    "WarningGenerator",
    "WarningPrioritizer",
]
