"""Software FMEA at the architecture level (Sect. 4.7, [18]).

Sözer et al. extend failure-modes-and-effects analysis to the software
architecture: failure modes are attached to components, effects propagate
along the dependency structure, and criticality combines probability with
user-perceived severity.  The reproduction runs directly on the Koala
:class:`~repro.koala.binding.Configuration` of the simulated TV and can
take its severity weights from the perception package — closing the loop
between user studies and architecture analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..koala.binding import Configuration


@dataclass(frozen=True)
class FailureMode:
    """One way a component can fail."""

    component: str
    name: str
    #: Occurrence probability per mission (normalized 0..1).
    probability: float
    #: Local severity if only this component misbehaved (0..1).
    local_severity: float
    #: Detectability by existing checks (0 = invisible, 1 = always caught).
    detectability: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("probability", "local_severity", "detectability"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1]")


@dataclass(frozen=True)
class FmeaEntry:
    """One row of the FMEA table."""

    failure_mode: FailureMode
    affected_components: tuple
    user_severity: float
    criticality: float
    rpn: float  # risk priority number (probability × severity × escape)


class ArchitectureFmea:
    """Propagates failure modes over the component dependency graph."""

    def __init__(
        self,
        configuration: Configuration,
        user_facing_severity: Optional[Dict[str, float]] = None,
    ) -> None:
        self.configuration = configuration
        #: Severity weight of each *user-facing* component's loss; derived
        #: from perception studies in the full pipeline.
        self.user_facing_severity = dict(user_facing_severity or {})
        self._graph = configuration.dependency_graph()

    # ------------------------------------------------------------------
    def affected_by(self, component: str) -> List[str]:
        """Components whose service degrades if ``component`` fails.

        Effects flow against the dependency direction: whoever *requires*
        (directly or transitively) the failed component is affected.
        """
        if component not in self._graph:
            return []
        reversed_graph = self._graph.reverse()
        return sorted(nx.descendants(reversed_graph, component))

    def user_severity_of(self, component: str) -> float:
        """Combined user-facing severity when ``component`` fails."""
        affected = set(self.affected_by(component)) | {component}
        severity = 0.0
        for name in affected:
            severity = max(severity, self.user_facing_severity.get(name, 0.0))
        return severity

    # ------------------------------------------------------------------
    def analyze(self, failure_modes: Sequence[FailureMode]) -> List[FmeaEntry]:
        """Produce the FMEA table, sorted by descending criticality."""
        entries: List[FmeaEntry] = []
        for mode in failure_modes:
            if mode.component not in self.configuration.components:
                raise KeyError(f"unknown component {mode.component!r}")
            affected = tuple(self.affected_by(mode.component))
            user_severity = max(
                mode.local_severity, self.user_severity_of(mode.component)
            )
            escape = 1.0 - mode.detectability
            criticality = mode.probability * user_severity
            entries.append(
                FmeaEntry(
                    failure_mode=mode,
                    affected_components=affected,
                    user_severity=user_severity,
                    criticality=criticality,
                    rpn=mode.probability * user_severity * escape,
                )
            )
        entries.sort(key=lambda entry: -entry.rpn)
        return entries

    def improvement_targets(
        self, failure_modes: Sequence[FailureMode], top_n: int = 3
    ) -> List[str]:
        """Components whose failure modes dominate the risk — where to
        spend dependability effort first."""
        table = self.analyze(failure_modes)
        seen: List[str] = []
        for entry in table:
            component = entry.failure_mode.component
            if component not in seen:
                seen.append(component)
            if len(seen) >= top_n:
                break
        return seen
