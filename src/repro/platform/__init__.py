"""Simulated SoC platform: processors, bus, memory, tasks, scheduler."""

from .bus import Bus, MasterStats
from .cpu import Processor, ProcessorPool
from .memory import ClientStats, MemoryArbiter, MemoryRequest, SharedMemory
from .scheduler import Scheduler
from .soc import SoC, make_tv_soc
from .task import JobRecord, PeriodicTask, TaskStats

__all__ = [
    "Bus",
    "ClientStats",
    "JobRecord",
    "MasterStats",
    "MemoryArbiter",
    "MemoryRequest",
    "PeriodicTask",
    "Processor",
    "ProcessorPool",
    "Scheduler",
    "SharedMemory",
    "SoC",
    "TaskStats",
    "make_tv_soc",
]
