"""Shared interconnect with bandwidth arbitration.

The paper's observation targets include "load of processors and busses"
(Sect. 3) and its stress testing removes bus bandwidth (Sect. 4.7).  The
:class:`Bus` models a shared link: transfers occupy one of ``channels``
grant slots and take ``size / bandwidth`` time.  Bandwidth can be reduced
at run time (bandwidth takeaway) and per-master transfer statistics are
kept for the observers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Any

from ..sim.kernel import Kernel
from ..sim.process import Delay
from ..sim.resources import Resource


@dataclass(slots=True)
class MasterStats:
    """Per-master transfer accounting."""

    transfers: int = 0
    bytes_moved: float = 0.0
    total_latency: float = 0.0

    def mean_latency(self) -> float:
        if self.transfers == 0:
            return 0.0
        return self.total_latency / self.transfers


class Bus:
    """A shared bus: ``channels`` concurrent grants, shared ``bandwidth``.

    ``transfer`` is a generator to be yielded-from inside a simulated
    process; it acquires a grant slot, holds it for the transfer duration,
    and releases it.  Effective per-transfer rate is ``bandwidth /
    channels`` so reducing bandwidth (stress testing) stretches every
    in-flight transfer that starts afterwards.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str = "bus",
        bandwidth: float = 100.0,
        channels: int = 1,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.kernel = kernel
        self.name = name
        self._bandwidth = bandwidth
        self.channels = channels
        self.slots = Resource(kernel, capacity=channels, name=f"bus:{name}")
        self.stats: Dict[str, MasterStats] = {}

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    def set_bandwidth(self, bandwidth: float) -> None:
        """Run-time bandwidth change (resource takeaway, Sect. 4.7)."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth = bandwidth

    def transfer_time(self, size: float) -> float:
        """Duration of a transfer of ``size`` units at current bandwidth."""
        return size / (self._bandwidth / self.channels)

    def transfer(
        self, master: str, size: float, priority: int = 0
    ) -> Generator[Any, Any, float]:
        """Generator: perform a bus transfer; returns the observed latency."""
        start = self.kernel.now
        yield self.slots.acquire(priority)
        try:
            yield Delay(self.transfer_time(size))
        finally:
            self.slots.release()
        latency = self.kernel.now - start
        stats = self.stats.get(master)
        if stats is None:
            stats = self.stats[master] = MasterStats()
        stats.transfers += 1
        stats.bytes_moved += size
        stats.total_latency += latency
        return latency

    def master_stats(self, master: str) -> MasterStats:
        return self.stats.setdefault(master, MasterStats())
