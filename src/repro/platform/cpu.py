"""Simulated processors.

A high-end TV is "a system-on-chip with multiple processors, various types
of memory, and dedicated hardware accelerators" (Sect. 2).  A
:class:`Processor` here is a single-context execution resource with a
*speed* (work units per simulated time unit) and utilization accounting.
Tasks (see :mod:`repro.platform.task`) compete for it through the
underlying :class:`~repro.sim.resources.Resource`.

The CPU-eater stress tool (Sect. 4.7) attacks exactly this abstraction: it
is an ordinary competing task that consumes processor time at the
application level.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.kernel import Kernel
from ..sim.resources import Resource


class Processor:
    """One processor core (or dedicated accelerator).

    ``speed`` scales execution time: a job of ``work`` units occupies the
    core for ``work / speed`` time.  ``busy_time`` integrates occupancy so
    experiments can report utilization over any window.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        speed: float = 1.0,
        *,
        accelerator: bool = False,
    ) -> None:
        if speed <= 0:
            raise ValueError("processor speed must be positive")
        self.kernel = kernel
        self.name = name
        self.speed = speed
        self.accelerator = accelerator
        self.core = Resource(kernel, capacity=1, name=f"cpu:{name}")
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        self.jobs_executed = 0

    def execution_time(self, work: float) -> float:
        """Time this core needs for ``work`` units."""
        return work / self.speed

    # -- occupancy accounting (called by tasks around their busy section) --
    def note_start(self) -> None:
        self._busy_since = self.kernel.now

    def note_stop(self) -> None:
        if self._busy_since is not None:
            self.busy_time += self.kernel.now - self._busy_since
            self._busy_since = None
        self.jobs_executed += 1

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time busy over ``[since, now]``."""
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.kernel.now - max(self._busy_since, since)
        return min(1.0, busy / elapsed)

    def queue_length(self) -> int:
        """Tasks currently waiting for this core."""
        return self.core.queue_length()

    def load_estimate(self) -> float:
        """Cheap load metric for the load balancer: queue + occupancy."""
        return self.core.queue_length() + self.core.in_use


class ProcessorPool:
    """The set of cores on the SoC; lookup and load inspection helpers."""

    def __init__(self, processors: List[Processor]) -> None:
        if not processors:
            raise ValueError("pool needs at least one processor")
        self.processors = list(processors)
        self._by_name = {p.name: p for p in processors}
        if len(self._by_name) != len(processors):
            raise ValueError("duplicate processor names in pool")

    def __iter__(self):
        return iter(self.processors)

    def __len__(self) -> int:
        return len(self.processors)

    def get(self, name: str) -> Processor:
        return self._by_name[name]

    def least_loaded(self, exclude: Optional[Processor] = None) -> Processor:
        """Processor with the smallest load estimate (migration target)."""
        candidates = [p for p in self.processors if p is not exclude]
        if not candidates:
            raise ValueError("no candidate processors")
        return min(candidates, key=lambda p: (p.load_estimate(), p.name))
