"""Shared memory with a programmable arbiter.

NXP Research's line of work in Trader (Sect. 4.5) is "to make memory
arbitration more flexible such that it can be adapted at run-time to deal
with problems concerning memory access".  This module provides the
substrate for that: a :class:`SharedMemory` served through a
:class:`MemoryArbiter` whose scheduling *policy* — and per-client weights —
can be replaced while the simulation runs.  The adaptive controller that
does the run-time re-weighting lives in :mod:`repro.recovery.memarbiter`.

Policies:

* ``round_robin``  — equal turns over clients with pending requests;
* ``priority``     — fixed client priorities (lower value served first);
* ``weighted``     — deficit-weighted fair sharing by ``weights``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..sim.kernel import Kernel
from ..sim.process import Signal, WaitSignal


VALID_POLICIES = ("round_robin", "priority", "weighted")


@dataclass(slots=True)
class MemoryRequest:
    """One outstanding access: ``words`` words for ``client``."""

    client: str
    words: int
    issue_time: float
    done: Signal = field(default_factory=Signal)
    grant_time: Optional[float] = None


@dataclass(slots=True)
class ClientStats:
    """Per-client latency/throughput accounting the observers read."""

    requests: int = 0
    words: int = 0
    total_latency: float = 0.0
    max_latency: float = 0.0

    def mean_latency(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_latency / self.requests


class MemoryArbiter:
    """Grants one request at a time according to the active policy."""

    def __init__(
        self,
        kernel: Kernel,
        words_per_time: float = 100.0,
        policy: str = "round_robin",
        name: str = "mem-arbiter",
    ) -> None:
        if words_per_time <= 0:
            raise ValueError("service rate must be positive")
        if policy not in VALID_POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.kernel = kernel
        self.name = name
        self.words_per_time = words_per_time
        self.policy = policy
        self.priorities: Dict[str, int] = {}
        self.weights: Dict[str, float] = {}
        self._deficits: Dict[str, float] = {}
        self._queues: Dict[str, List[MemoryRequest]] = {}
        self._rr_order: List[str] = []
        self._last_served: Optional[str] = None
        self._busy = False
        self.stats: Dict[str, ClientStats] = {}

    # ------------------------------------------------------------------
    # configuration (callable at run time — this is the paper's point)
    # ------------------------------------------------------------------
    def set_policy(self, policy: str) -> None:
        if policy not in VALID_POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy

    def set_priority(self, client: str, priority: int) -> None:
        self.priorities[client] = priority

    def set_weight(self, client: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.weights[client] = weight

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def access(self, client: str, words: int) -> Generator[Any, Any, float]:
        """Generator: yield-from inside a process; returns the latency."""
        request = MemoryRequest(client, words, self.kernel.now)
        queue = self._queues.setdefault(client, [])
        if client not in self._rr_order:
            self._rr_order.append(client)
        queue.append(request)
        self._pump()
        yield WaitSignal(request.done)
        return self.kernel.now - request.issue_time

    def pending(self, client: Optional[str] = None) -> int:
        if client is not None:
            return len(self._queues.get(client, []))
        return sum(len(q) for q in self._queues.values())

    def client_stats(self, client: str) -> ClientStats:
        return self.stats.setdefault(client, ClientStats())

    # ------------------------------------------------------------------
    # arbitration core
    # ------------------------------------------------------------------
    def _clients_with_work(self) -> List[str]:
        return [c for c in self._rr_order if self._queues.get(c)]

    def _pick_client(self) -> Optional[str]:
        candidates = self._clients_with_work()
        if not candidates:
            return None
        if self.policy == "priority":
            return min(
                candidates, key=lambda c: (self.priorities.get(c, 0), c)
            )
        if self.policy == "weighted":
            # Deficit round robin: accumulate credit by weight, serve the
            # client with the largest credit, charge it the request size.
            for client in candidates:
                weight = self.weights.get(client, 1.0)
                self._deficits[client] = self._deficits.get(client, 0.0) + weight
            chosen = max(candidates, key=lambda c: (self._deficits.get(c, 0.0), c))
            return chosen
        # Round robin: scan cyclically starting just after the client
        # served most recently (robust against clients joining later).
        order = self._rr_order
        start = 0
        if self._last_served in order:
            start = (order.index(self._last_served) + 1) % len(order)
        for offset in range(len(order)):
            client = order[(start + offset) % len(order)]
            if self._queues.get(client):
                return client
        return None

    def _pump(self) -> None:
        if self._busy:
            return
        client = self._pick_client()
        if client is None:
            return
        request = self._queues[client].pop(0)
        self._last_served = client
        if self.policy == "weighted":
            self._deficits[client] = self._deficits.get(client, 0.0) - request.words
        self._busy = True
        request.grant_time = self.kernel.now
        service = request.words / self.words_per_time
        self.kernel.schedule(
            service, lambda: self._complete(request), name=f"mem:{client}",
            transient=True,
        )

    def _complete(self, request: MemoryRequest) -> None:
        self._busy = False
        latency = self.kernel.now - request.issue_time
        stats = self.stats.get(request.client)
        if stats is None:
            stats = self.stats[request.client] = ClientStats()
        stats.requests += 1
        stats.words += request.words
        stats.total_latency += latency
        stats.max_latency = max(stats.max_latency, latency)
        request.done.fire(latency)
        self._pump()


class SharedMemory:
    """A named memory region behind an arbiter, with a value store.

    The value store lets the simulated TV software keep real state in
    "memory" so that faults like wild writes (Sect. 2's wrong memory value
    example) have observable consequences the error detectors can find.
    """

    def __init__(self, kernel: Kernel, arbiter: MemoryArbiter, name: str = "dram") -> None:
        self.kernel = kernel
        self.arbiter = arbiter
        self.name = name
        self._cells: Dict[str, Any] = {}

    def read(self, client: str, address: str, words: int = 1):
        """Generator: arbitrated read; returns (value, latency)."""
        latency = yield from self.arbiter.access(client, words)
        return self._cells.get(address), latency

    def write(self, client: str, address: str, value: Any, words: int = 1):
        """Generator: arbitrated write; returns latency."""
        latency = yield from self.arbiter.access(client, words)
        self._cells[address] = value
        return latency

    def poke(self, address: str, value: Any) -> None:
        """Instant, un-arbitrated write — the fault injector's back door."""
        self._cells[address] = value

    def peek(self, address: str) -> Any:
        """Instant, un-arbitrated read — for observers/debug."""
        return self._cells.get(address)
