"""Task-set management and placement.

The :class:`Scheduler` owns the mapping from tasks to processors.  It is
deliberately simple — static priority, non-preemptive, run-to-completion
per job — because the paper's recovery mechanisms (load balancing, unit
restart) operate *above* the dispatcher: they change placement and
lifecycle, not the core scheduling discipline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.kernel import Kernel
from .cpu import ProcessorPool
from .task import PeriodicTask


class Scheduler:
    """Creates, places, starts, stops, and migrates periodic tasks."""

    def __init__(self, kernel: Kernel, pool: ProcessorPool) -> None:
        self.kernel = kernel
        self.pool = pool
        self.tasks: Dict[str, PeriodicTask] = {}
        self.migration_log: List[Dict[str, object]] = []

    def add_task(
        self,
        name: str,
        processor: str,
        period: float,
        work: float,
        deadline: Optional[float] = None,
        priority: int = 0,
        work_fn: Optional[Callable[[], float]] = None,
        migration_cost: float = 0.0,
        autostart: bool = True,
    ) -> PeriodicTask:
        """Create a task bound to ``processor`` and (by default) start it."""
        if name in self.tasks:
            raise ValueError(f"duplicate task name {name!r}")
        task = PeriodicTask(
            self.kernel,
            name,
            self.pool.get(processor),
            period=period,
            work=work,
            deadline=deadline,
            priority=priority,
            work_fn=work_fn,
            migration_cost=migration_cost,
        )
        self.tasks[name] = task
        if autostart:
            task.start()
        return task

    def remove_task(self, name: str) -> None:
        task = self.tasks.pop(name, None)
        if task is not None:
            task.stop()

    def migrate(self, task_name: str, target_processor: str) -> None:
        """Move a task; recorded in ``migration_log`` for the experiments."""
        task = self.tasks[task_name]
        target = self.pool.get(target_processor)
        source = task.processor.name
        task.migrate(target)
        self.migration_log.append(
            {
                "time": self.kernel.now,
                "task": task_name,
                "from": source,
                "to": target_processor,
            }
        )

    def placement(self) -> Dict[str, str]:
        """Current task → processor map (pending migrations not shown)."""
        return {name: task.processor.name for name, task in self.tasks.items()}

    def processor_utilization(self) -> Dict[str, float]:
        """Nominal utilization per processor from task parameters."""
        load: Dict[str, float] = {p.name: 0.0 for p in self.pool}
        for task in self.tasks.values():
            load[task.processor.name] += task.nominal_utilization()
        return load

    def stop_all(self) -> None:
        for task in self.tasks.values():
            task.stop()
