"""SoC composition: cores + bus + memory + scheduler in one object.

:class:`SoC` is the simulated hardware the TV software runs on — the
reproduction's stand-in for NXP's TV platform.  Experiments build one with
:func:`make_tv_soc` (a dual-core + accelerator configuration comparable to
the multi-processor system-on-chip sketched in Sect. 2).
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.kernel import Kernel
from ..sim.random import RandomStreams
from ..sim.trace import Trace
from .bus import Bus
from .cpu import Processor, ProcessorPool
from .memory import MemoryArbiter, SharedMemory
from .scheduler import Scheduler


class SoC:
    """A complete simulated platform."""

    def __init__(
        self,
        kernel: Kernel,
        processors: List[Processor],
        bus: Bus,
        memory: SharedMemory,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.kernel = kernel
        self.pool = ProcessorPool(processors)
        self.bus = bus
        self.memory = memory
        self.arbiter = memory.arbiter
        self.scheduler = Scheduler(kernel, self.pool)
        self.streams = streams or RandomStreams(0)
        self.trace = Trace(clock=lambda: kernel.now)

    def processor(self, name: str) -> Processor:
        return self.pool.get(name)

    def snapshot(self) -> dict:
        """One-shot health snapshot, the raw material for observers."""
        return {
            "time": self.kernel.now,
            "cpu_utilization": {
                p.name: p.utilization() for p in self.pool
            },
            "cpu_queue": {p.name: p.queue_length() for p in self.pool},
            "bus_bandwidth": self.bus.bandwidth,
            "mem_pending": self.arbiter.pending(),
            "placement": self.scheduler.placement(),
        }


def make_tv_soc(
    kernel: Optional[Kernel] = None,
    seed: int = 0,
    *,
    cores: int = 2,
    core_speed: float = 1.0,
    accelerator_speed: float = 4.0,
    bus_bandwidth: float = 200.0,
    memory_rate: float = 400.0,
) -> SoC:
    """Build the standard TV platform used across examples and benches.

    Two general-purpose cores, one video accelerator, a shared bus, and a
    round-robin memory arbiter.  All parameters are overridable so the
    stress benches (E7) can build starved variants.
    """
    kernel = kernel or Kernel()
    streams = RandomStreams(seed)
    processors = [
        Processor(kernel, f"cpu{i}", speed=core_speed) for i in range(cores)
    ]
    processors.append(
        Processor(kernel, "vpu", speed=accelerator_speed, accelerator=True)
    )
    bus = Bus(kernel, "axi", bandwidth=bus_bandwidth)
    arbiter = MemoryArbiter(kernel, words_per_time=memory_rate)
    memory = SharedMemory(kernel, arbiter, "ddr")
    return SoC(kernel, processors, bus, memory, streams=streams)
