"""Periodic and sporadic tasks with deadlines.

The real-time workload of the TV — decoding, scaling, enhancement, error
correction — is modelled as tasks with a period, a nominal amount of work
(WCET-ish), and a relative deadline.  A task is bound to a
:class:`~repro.platform.cpu.Processor` and can be *migrated* at run time;
migration takes effect at the next job boundary and costs
``migration_cost`` extra work once, which is how IMEC's task-migration
demonstration behaves (Sect. 4.5).

Each completed job leaves a :class:`JobRecord`; deadline misses are the
raw signal from which the video pipeline derives frame quality and from
which the awareness monitors detect overload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from ..sim.kernel import Kernel
from ..sim.process import Delay, Interrupted, Process
from .cpu import Processor


@dataclass(slots=True)
class JobRecord:
    """Timing of one job (one period's execution)."""

    release: float
    start: float
    finish: float
    work: float
    processor: str
    missed: bool


@dataclass(slots=True)
class TaskStats:
    """Aggregates over completed jobs."""

    jobs: int = 0
    misses: int = 0
    total_response: float = 0.0
    max_response: float = 0.0

    def miss_rate(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.misses / self.jobs

    def mean_response(self) -> float:
        if self.jobs == 0:
            return 0.0
        return self.total_response / self.jobs


class PeriodicTask:
    """A periodic job stream on a processor.

    ``work_fn`` (if given) is called at each release and returns the job's
    actual work; this is how signal-quality-dependent error correction
    inflates load.  ``on_job`` observers receive each :class:`JobRecord` —
    the video pipeline uses this to tie misses to frame quality, and the
    awareness observers use it as an internal-state probe.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        processor: Processor,
        period: float,
        work: float,
        deadline: Optional[float] = None,
        priority: int = 0,
        work_fn: Optional[Callable[[], float]] = None,
        migration_cost: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if work < 0:
            raise ValueError("work must be non-negative")
        self.kernel = kernel
        self.name = name
        self.processor = processor
        self.period = period
        self.work = work
        self.deadline = deadline if deadline is not None else period
        self.priority = priority
        self.work_fn = work_fn
        self.migration_cost = migration_cost
        self.records: List[JobRecord] = []
        self.stats = TaskStats()
        self.on_job: List[Callable[[JobRecord], None]] = []
        self._pending_migration: Optional[Processor] = None
        self._process: Optional[Process] = None
        self.running = False

    # ------------------------------------------------------------------
    def start(self) -> Process:
        """Launch the task's job loop as a simulated process."""
        if self.running:
            raise RuntimeError(f"task {self.name} already running")
        self.running = True
        self._process = Process(
            self.kernel, self._body(), name=f"task:{self.name}"
        )
        return self._process

    def stop(self) -> None:
        """Kill the job loop (recovery / reconfiguration)."""
        self.running = False
        if self._process is not None and self._process.alive:
            self._process.kill(f"stop:{self.name}")
        self._process = None

    def migrate(self, target: Processor) -> None:
        """Request migration; applied at the next job release."""
        if target is not self.processor:
            self._pending_migration = target

    # ------------------------------------------------------------------
    def _body(self) -> Generator[Any, Any, None]:
        try:
            while self.running:
                release = self.kernel.now
                migrated = False
                if self._pending_migration is not None:
                    self.processor = self._pending_migration
                    self._pending_migration = None
                    migrated = True
                job_work = self.work if self.work_fn is None else self.work_fn()
                if migrated:
                    job_work += self.migration_cost
                yield self.processor.core.acquire(self.priority)
                start = self.kernel.now
                self.processor.note_start()
                try:
                    yield Delay(self.processor.execution_time(job_work))
                finally:
                    self.processor.note_stop()
                    self.processor.core.release()
                finish = self.kernel.now
                record = JobRecord(
                    release=release,
                    start=start,
                    finish=finish,
                    work=job_work,
                    processor=self.processor.name,
                    missed=(finish - release) > self.deadline,
                )
                self._account(record)
                # Sleep until the next period boundary; if the job overran
                # its period, release the next job immediately (no backlog
                # queueing — streaming workloads skip, they do not catch up).
                next_release = release + self.period
                if next_release > self.kernel.now:
                    yield Delay(next_release - self.kernel.now)
        except Interrupted:
            return

    def _account(self, record: JobRecord) -> None:
        self.records.append(record)
        response = record.finish - record.release
        self.stats.jobs += 1
        self.stats.total_response += response
        self.stats.max_response = max(self.stats.max_response, response)
        if record.missed:
            self.stats.misses += 1
        for observer in self.on_job:
            observer(record)

    # ------------------------------------------------------------------
    def recent_miss_rate(self, window: int = 20) -> float:
        """Miss rate over the last ``window`` jobs (load-balancer input)."""
        recent = self.records[-window:]
        if not recent:
            return 0.0
        return sum(1 for r in recent if r.missed) / len(recent)

    def nominal_utilization(self) -> float:
        """work / (speed * period) on the current processor."""
        return self.work / (self.processor.speed * self.period)
