"""Fluent construction of state machines.

The paper's observation (Sect. 4.2) is that industrial spec models are
hard to obtain and easy to get wrong; a compact, declarative construction
API lowers both costs.  :class:`MachineBuilder` builds the state tree and
transitions in one readable block::

    b = MachineBuilder("tv")
    b.state("off")
    on = b.state("on", initial="viewing")
    b.state("viewing", parent=on)
    b.state("menu", parent=on)
    b.initial("off")
    b.transition("off", "on", event="key_power")
    b.transition("on", "off", event="key_power")
    b.transition("viewing", "menu", event="key_menu")
    machine = b.build()
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .machine import Machine
from .states import State
from .transitions import GuardFn, Transition, TransitionActionFn


class MachineBuilder:
    """Accumulates states/transitions, then builds a :class:`Machine`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.root = State(f"{name}_root")
        self._states: Dict[str, State] = {self.root.name: self.root}
        self._pending_initial: Dict[str, str] = {}
        self._machine = Machine(name, self.root)
        self._built = False

    # ------------------------------------------------------------------
    def state(
        self,
        name: str,
        parent: Optional[str] = None,
        initial: Optional[str] = None,
        on_entry: Optional[Callable[[Machine], None]] = None,
        on_exit: Optional[Callable[[Machine], None]] = None,
    ) -> State:
        """Declare a state (child of ``parent`` or of the root)."""
        if name in self._states:
            raise ValueError(f"duplicate state name {name!r}")
        parent_state = self.root if parent is None else self._states[name_or_raise(self._states, parent)]
        state = State(name, parent_state, on_entry=on_entry, on_exit=on_exit)
        self._states[name] = state
        if initial is not None:
            self._pending_initial[name] = initial
        return state

    def initial(self, name: str) -> None:
        """Set the machine's top-level initial state."""
        self._pending_initial[self.root.name] = name

    def transition(
        self,
        source: str,
        target: Optional[str],
        event: Optional[str] = None,
        guard: Optional[GuardFn] = None,
        action: Optional[TransitionActionFn] = None,
        after: Optional[float] = None,
        name: str = "",
        internal: bool = False,
    ) -> Transition:
        """Declare a transition between named states."""
        source_state = self._states[name_or_raise(self._states, source)]
        target_state = None
        if target is not None:
            target_state = self._states[name_or_raise(self._states, target)]
        transition = Transition(
            source_state,
            target_state,
            event=event,
            guard=guard,
            action=action,
            after=after,
            name=name,
            internal=internal,
        )
        self._machine.add_transition(transition)
        return transition

    def var(self, key: str, value) -> "MachineBuilder":
        """Declare an initial machine variable."""
        self._machine.vars[key] = value
        return self

    # ------------------------------------------------------------------
    def build(self, initialize: bool = True, time: float = 0.0) -> Machine:
        """Resolve initial-state links and return the machine."""
        if self._built:
            raise RuntimeError("build() called twice")
        for parent_name, child_name in self._pending_initial.items():
            parent = self._states[parent_name]
            child = self._states[name_or_raise(self._states, child_name)]
            parent.set_initial(child)
        for state in self._states.values():
            if not state.is_leaf and state.initial is None:
                raise ValueError(
                    f"compound state {state.name!r} has no initial child"
                )
        self._built = True
        if initialize:
            self._machine.initialize(time)
        return self._machine

    def get_state(self, name: str) -> State:
        return self._states[name]


def name_or_raise(states: Dict[str, State], name: str) -> str:
    if name not in states:
        raise ValueError(f"unknown state {name!r}; declare it with .state() first")
    return name
