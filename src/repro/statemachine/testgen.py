"""Test-script generation from executable models.

Sect. 4.2 mentions "test scripts to improve model quality"; this module
derives them mechanically.  It explores the machine (like the checker) to
build the reachable labelled transition system, then extracts a small set
of event sequences (*scenarios*) that together cover every reachable
edge — transition-coverage test scripts.  The diagnosis experiments reuse
these scenarios as key-press sequences over the TV.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .events import Event
from .machine import Machine
from .check import ModelChecker


@dataclass
class Scenario:
    """One generated test: the event names to inject in order."""

    name: str
    events: List[str]
    covers: Set[Tuple[str, str, str]] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.events)


class TestGenerator:
    """Builds transition-covering scenarios for a machine."""

    def __init__(
        self,
        machine: Machine,
        alphabet: List[Event],
        max_states: int = 5000,
    ) -> None:
        self.machine = machine
        self.alphabet = list(alphabet)
        self.max_states = max_states
        self._graph: Optional[nx.MultiDiGraph] = None
        self._initial_key: Optional[str] = None

    # ------------------------------------------------------------------
    def _explore(self) -> nx.MultiDiGraph:
        """Build the reachable LTS: nodes are state keys, edges are events."""
        checker = ModelChecker(self.machine, self.alphabet, max_states=self.max_states)
        graph = nx.MultiDiGraph()
        initial = self.machine.snapshot()
        initial_key = self._key()
        self._initial_key = initial_key
        graph.add_node(initial_key)
        visited = {initial_key: initial}
        frontier = [initial_key]
        while frontier and len(visited) < self.max_states:
            key = frontier.pop(0)
            snapshot = visited[key]
            for event in self.alphabet:
                self.machine.restore(snapshot)
                fired = self.machine.dispatch(
                    event.with_time(self.machine.time)
                )
                if not fired:
                    continue
                new_key = self._key()
                if new_key not in visited:
                    visited[new_key] = self.machine.snapshot()
                    graph.add_node(new_key)
                    frontier.append(new_key)
                graph.add_edge(key, new_key, event=event.name)
        self.machine.restore(initial)
        return graph

    def _key(self) -> str:
        snapshot = self.machine.snapshot()
        vars_key = repr(sorted(snapshot["vars"].items(), key=lambda kv: kv[0]))
        return (snapshot["active"] or "") + "|" + vars_key

    # ------------------------------------------------------------------
    def generate(self, max_scenarios: int = 50) -> List[Scenario]:
        """Greedy transition coverage: repeatedly walk to an uncovered edge."""
        if self._graph is None:
            self._graph = self._explore()
        graph = self._graph
        uncovered: Set[Tuple[str, str, str]] = {
            (u, v, data["event"]) for u, v, data in graph.edges(data=True)
        }
        scenarios: List[Scenario] = []
        counter = 0
        while uncovered and counter < max_scenarios:
            counter += 1
            scenario = self._cover_some(graph, uncovered, f"scenario_{counter}")
            if scenario is None or not scenario.events:
                break
            scenarios.append(scenario)
        return scenarios

    def _cover_some(
        self,
        graph: nx.MultiDiGraph,
        uncovered: Set[Tuple[str, str, str]],
        name: str,
    ) -> Optional[Scenario]:
        """One walk from the initial state chaining nearby uncovered edges.

        ``uncovered`` shrinks in place as the walk covers edges; keeping
        one mutable set (instead of re-deriving ``uncovered - covers``
        per hop) is what makes covering an E-edge graph roughly linear
        in E rather than quadratic.
        """
        assert self._initial_key is not None
        events: List[str] = []
        covers: Set[Tuple[str, str, str]] = set()
        position = self._initial_key
        for _ in range(len(uncovered) + 1):
            target_edge = self._nearest_uncovered(graph, position, uncovered)
            if target_edge is None:
                break
            path_events, end = target_edge
            events.extend(e for _, _, e in path_events)
            covers.update(path_events)
            uncovered.difference_update(path_events)
            position = end
        if not events:
            return None
        return Scenario(name=name, events=events, covers=covers)

    def _nearest_uncovered(
        self,
        graph: nx.MultiDiGraph,
        start: str,
        uncovered: Set[Tuple[str, str, str]],
    ) -> Optional[Tuple[List[Tuple[str, str, str]], str]]:
        """BFS for the closest uncovered edge; returns (edge-path, end node).

        Parent-pointer BFS: the path is reconstructed only for the one
        edge returned, so expanding a node costs O(out-degree) instead
        of copying a growing path for every neighbour.
        """
        if not uncovered:
            return None
        parents: Dict[str, Tuple[str, Tuple[str, str, str]]] = {}
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for _, successor, data in graph.out_edges(node, data=True):
                edge = (node, successor, data["event"])
                if edge in uncovered:
                    path = [edge]
                    step = node
                    while step != start:
                        step, parent_edge = parents[step]
                        path.append(parent_edge)
                    path.reverse()
                    return path, successor
                if successor not in seen:
                    seen.add(successor)
                    parents[successor] = (node, edge)
                    queue.append(successor)
        return None

    # ------------------------------------------------------------------
    def replay(self, scenario: Scenario) -> List[str]:
        """Run a scenario on the machine; returns visited configurations."""
        initial = self.machine.snapshot()
        configs = [self.machine.configuration()]
        for event_name in scenario.events:
            self.machine.inject(event_name)
            configs.append(self.machine.configuration())
        self.machine.restore(initial)
        return configs
