"""Test-script generation from executable models.

Sect. 4.2 mentions "test scripts to improve model quality"; this module
derives them mechanically.  It explores the machine (like the checker) to
build the reachable labelled transition system, then extracts a small set
of event sequences (*scenarios*) that together cover every reachable
edge — transition-coverage test scripts.  The diagnosis experiments reuse
these scenarios as key-press sequences over the TV.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from .events import Event
from .machine import Machine
from .check import ModelChecker


#: One transition-coverage key: ``(source-config, target-config, event)``
#: — an edge of the reachable labelled transition system.
CoverageKey = Tuple[str, str, str]


@dataclass
class Scenario:
    """One generated test: the event names to inject in order."""

    name: str
    events: List[str]
    covers: Set[Tuple[str, str, str]] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class CoverageReport:
    """Covered vs uncovered transition keys against one machine's
    reachable LTS — the shared oracle for the test generator, the
    scenario fuzzer, and any future coverage tool."""

    covered: frozenset
    uncovered: frozenset

    @property
    def total(self) -> int:
        return len(self.covered) + len(self.uncovered)

    @property
    def ratio(self) -> float:
        """Covered / reachable (vacuously 1.0 on an edgeless model)."""
        total = self.total
        return len(self.covered) / total if total else 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "covered": len(self.covered),
            "uncovered": len(self.uncovered),
            "ratio": self.ratio,
            "uncovered_keys": sorted(self.uncovered),
        }


class TestGenerator:
    """Builds transition-covering scenarios for a machine."""

    def __init__(
        self,
        machine: Machine,
        alphabet: List[Event],
        max_states: int = 5000,
    ) -> None:
        self.machine = machine
        self.alphabet = list(alphabet)
        self.max_states = max_states
        self._graph: Optional[nx.MultiDiGraph] = None
        self._initial_key: Optional[str] = None
        self._fired_names: Optional[frozenset] = None

    # ------------------------------------------------------------------
    def _explore(self) -> nx.MultiDiGraph:
        """Build the reachable LTS: nodes are state keys, edges are events."""
        checker = ModelChecker(self.machine, self.alphabet, max_states=self.max_states)
        graph = nx.MultiDiGraph()
        initial = self.machine.snapshot()
        initial_key = self._key()
        self._initial_key = initial_key
        graph.add_node(initial_key)
        visited = {initial_key: initial}
        frontier = [initial_key]
        while frontier and len(visited) < self.max_states:
            key = frontier.pop(0)
            snapshot = visited[key]
            for event in self.alphabet:
                self.machine.restore(snapshot)
                fired = self.machine.dispatch(
                    event.with_time(self.machine.time)
                )
                if not fired:
                    continue
                new_key = self._key()
                if new_key not in visited:
                    visited[new_key] = self.machine.snapshot()
                    graph.add_node(new_key)
                    frontier.append(new_key)
                graph.add_edge(key, new_key, event=event.name)
        self.machine.restore(initial)
        return graph

    def _key(self) -> str:
        snapshot = self.machine.snapshot()
        vars_key = repr(sorted(snapshot["vars"].items(), key=lambda kv: kv[0]))
        return (snapshot["active"] or "") + "|" + vars_key

    def _ensure_explored(self) -> nx.MultiDiGraph:
        """Explore once, caching the LTS and the set of machine
        transitions the walk exercised (by fire-count delta, so one
        O(transitions) diff instead of per-dispatch bookkeeping)."""
        if self._graph is None:
            before = {
                id(t): t.fire_count for t in self.machine.all_transitions()
            }
            self._graph = self._explore()
            self._fired_names = frozenset(
                t.name
                for t in self.machine.all_transitions()
                if t.fire_count > before[id(t)]
            )
        return self._graph

    # ------------------------------------------------------------------
    # the public coverage oracle
    # ------------------------------------------------------------------
    def coverage_keys(self) -> frozenset:
        """Every reachable transition key ``(source, target, event)``.

        This is exactly the edge set :meth:`generate`'s greedy walk
        covers — exposed so other tools (the scenario fuzzer's coverage
        signal, future dashboards) measure against the same universe
        instead of re-deriving their own.
        """
        graph = self._ensure_explored()
        return frozenset(
            (u, v, data["event"]) for u, v, data in graph.edges(data=True)
        )

    def transition_names(self) -> frozenset:
        """Names of the machine's transitions the reachable LTS can fire.

        Coarser than :meth:`coverage_keys` (one name may label many LTS
        edges) but directly comparable with live ``fire_count`` data —
        the granularity :mod:`repro.fuzz` reads off running monitors.
        """
        self._ensure_explored()
        assert self._fired_names is not None
        return self._fired_names

    def uncovered_report(self, covered) -> CoverageReport:
        """Split the reachable keys against an observed ``covered`` set.

        ``covered`` may hold LTS edge triples (from :attr:`Scenario.
        covers`) or transition names (from live machines); whichever
        universe its elements belong to decides the comparison.
        """
        covered = set(covered)
        if covered and all(isinstance(key, str) for key in covered):
            universe = self.transition_names()
        else:
            universe = self.coverage_keys()
        return CoverageReport(
            covered=frozenset(universe & covered),
            uncovered=frozenset(universe - covered),
        )

    # ------------------------------------------------------------------
    def generate(self, max_scenarios: int = 50) -> List[Scenario]:
        """Greedy transition coverage: repeatedly walk to an uncovered edge."""
        graph = self._ensure_explored()
        uncovered: Set[Tuple[str, str, str]] = set(self.coverage_keys())
        scenarios: List[Scenario] = []
        counter = 0
        while uncovered and counter < max_scenarios:
            counter += 1
            scenario = self._cover_some(graph, uncovered, f"scenario_{counter}")
            if scenario is None or not scenario.events:
                break
            scenarios.append(scenario)
        return scenarios

    def _cover_some(
        self,
        graph: nx.MultiDiGraph,
        uncovered: Set[Tuple[str, str, str]],
        name: str,
    ) -> Optional[Scenario]:
        """One walk from the initial state chaining nearby uncovered edges.

        ``uncovered`` shrinks in place as the walk covers edges; keeping
        one mutable set (instead of re-deriving ``uncovered - covers``
        per hop) is what makes covering an E-edge graph roughly linear
        in E rather than quadratic.
        """
        assert self._initial_key is not None
        events: List[str] = []
        covers: Set[Tuple[str, str, str]] = set()
        position = self._initial_key
        for _ in range(len(uncovered) + 1):
            target_edge = self._nearest_uncovered(graph, position, uncovered)
            if target_edge is None:
                break
            path_events, end = target_edge
            events.extend(e for _, _, e in path_events)
            covers.update(path_events)
            uncovered.difference_update(path_events)
            position = end
        if not events:
            return None
        return Scenario(name=name, events=events, covers=covers)

    def _nearest_uncovered(
        self,
        graph: nx.MultiDiGraph,
        start: str,
        uncovered: Set[Tuple[str, str, str]],
    ) -> Optional[Tuple[List[Tuple[str, str, str]], str]]:
        """BFS for the closest uncovered edge; returns (edge-path, end node).

        Parent-pointer BFS: the path is reconstructed only for the one
        edge returned, so expanding a node costs O(out-degree) instead
        of copying a growing path for every neighbour.
        """
        if not uncovered:
            return None
        parents: Dict[str, Tuple[str, Tuple[str, str, str]]] = {}
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for _, successor, data in graph.out_edges(node, data=True):
                edge = (node, successor, data["event"])
                if edge in uncovered:
                    path = [edge]
                    step = node
                    while step != start:
                        step, parent_edge = parents[step]
                        path.append(parent_edge)
                    path.reverse()
                    return path, successor
                if successor not in seen:
                    seen.add(successor)
                    parents[successor] = (node, edge)
                    queue.append(successor)
        return None

    # ------------------------------------------------------------------
    def replay(self, scenario: Scenario) -> List[str]:
        """Run a scenario on the machine; returns visited configurations."""
        initial = self.machine.snapshot()
        configs = [self.machine.configuration()]
        for event_name in scenario.events:
            self.machine.inject(event_name)
            configs.append(self.machine.configuration())
        self.machine.restore(initial)
        return configs
