"""Executable timed hierarchical state machines (the Stateflow analogue)."""

from .builder import MachineBuilder
from .events import Event, EventQueue
from .machine import Machine, MachineError, Output
from .states import State, least_common_ancestor
from .transitions import TIMEOUT_EVENT, Transition

__all__ = [
    "Event",
    "EventQueue",
    "Machine",
    "MachineBuilder",
    "MachineError",
    "Output",
    "State",
    "TIMEOUT_EVENT",
    "Transition",
    "least_common_ancestor",
]

from .check import CheckReport, ModelChecker, Violation
from .testgen import CoverageReport, Scenario, TestGenerator

__all__ += [
    "CheckReport",
    "ModelChecker",
    "Scenario",
    "CoverageReport",
    "TestGenerator",
    "Violation",
]
