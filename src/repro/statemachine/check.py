"""Explicit-state exploration of executable models.

Sect. 4.2: "it was very easy to make modeling errors, for instance,
because there are many interactions between features", and the project
investigates "formal model-checking and test scripts to improve model
quality".  :class:`ModelChecker` provides that, directly on the executable
machine:

* reachability over a finite event alphabet (time handled symbolically by
  a ``tick`` action that jumps to the next armed timeout);
* detection of **nondeterminism** (conflicting enabled transitions — the
  classic feature-interaction symptom);
* detection of **deadlock states** (no event or timeout enabled);
* user-supplied **invariants** checked in every reachable state (e.g.
  "teletext overlay and menu overlay are never both visible");
* unreached declared states (dead model parts).

Exploration uses machine snapshots, so guards/actions run for real — this
is model checking of the *executable* semantics, not of an abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .events import Event
from .machine import Machine
from .states import State


Invariant = Tuple[str, Callable[[Machine], bool]]


@dataclass
class Violation:
    """An invariant failure found during exploration."""

    invariant: str
    configuration: str
    vars: Dict[str, Any]
    trace: List[str]


@dataclass
class CheckReport:
    """Everything the exploration found."""

    states_explored: int = 0
    transitions_taken: int = 0
    truncated: bool = False
    deadlocks: List[str] = field(default_factory=list)
    nondeterminism: List[Tuple[str, str, List[str]]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    unreached_states: List[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True when no defect of any class was found."""
        return not (
            self.deadlocks
            or self.nondeterminism
            or self.violations
            or self.unreached_states
        )


class ModelChecker:
    """Bounded exhaustive exploration of a machine over an event alphabet."""

    TICK = "__tick__"

    def __init__(
        self,
        machine: Machine,
        alphabet: List[Event],
        invariants: Optional[List[Invariant]] = None,
        max_states: int = 20000,
    ) -> None:
        self.machine = machine
        self.alphabet = list(alphabet)
        self.invariants = list(invariants or [])
        self.max_states = max_states

    # ------------------------------------------------------------------
    def _state_key(self) -> Tuple[str, str]:
        snapshot = self.machine.snapshot()
        vars_key = repr(sorted(snapshot["vars"].items(), key=lambda kv: kv[0]))
        timer_key = repr(sorted(name for _, name, _ in snapshot["timers"]))
        return (snapshot["active"] or "", vars_key + "|" + timer_key)

    def _actions(self) -> List[Event]:
        actions = list(self.alphabet)
        if self.machine.next_timeout() is not None:
            actions.append(Event(self.TICK, {}, self.machine.time))
        return actions

    def _apply(self, event: Event) -> bool:
        if event.name == self.TICK:
            deadline = self.machine.next_timeout()
            if deadline is None:
                return False
            return self.machine.advance(deadline) > 0
        return self.machine.dispatch(event.with_time(self.machine.time))

    # ------------------------------------------------------------------
    def run(self) -> CheckReport:
        """Breadth-first exploration from the machine's current state."""
        report = CheckReport()
        nondet_before = len(self.machine.nondeterminism_log)
        initial = self.machine.snapshot()
        visited: Set[Tuple[str, str]] = set()
        reached_configs: Set[str] = set()
        frontier: List[Tuple[Dict[str, Any], List[str]]] = [(initial, [])]
        visited.add(self._state_key())

        while frontier:
            if len(visited) >= self.max_states:
                report.truncated = True
                break
            snapshot, trace = frontier.pop(0)
            self.machine.restore(snapshot)
            reached_configs.add(self.machine.configuration())
            self._check_invariants(report, trace)
            progressed = False
            for event in self._actions():
                self.machine.restore(snapshot)
                fired = self._apply(event)
                if not fired:
                    continue
                progressed = True
                report.transitions_taken += 1
                key = self._state_key()
                if key in visited:
                    continue
                visited.add(key)
                frontier.append((self.machine.snapshot(), trace + [event.name]))
            if not progressed:
                report.deadlocks.append(self.machine.configuration())

        report.states_explored = len(visited)
        report.nondeterminism = list(
            self.machine.nondeterminism_log[nondet_before:]
        )
        report.unreached_states = self._unreached(reached_configs)
        self.machine.restore(initial)
        return report

    # ------------------------------------------------------------------
    def _check_invariants(self, report: CheckReport, trace: List[str]) -> None:
        for name, predicate in self.invariants:
            if predicate(self.machine):
                continue
            report.violations.append(
                Violation(
                    invariant=name,
                    configuration=self.machine.configuration(),
                    vars=dict(self.machine.vars),
                    trace=list(trace),
                )
            )

    def _unreached(self, reached_configs: Set[str]) -> List[str]:
        reached_names: Set[str] = set()
        for config in reached_configs:
            reached_names.update(config.split("."))
        unreached: List[str] = []
        self._walk(self.machine.root, reached_names, unreached)
        return unreached

    def _walk(self, state: State, reached: Set[str], out: List[str]) -> None:
        if state.name not in reached and state.parent is not None:
            out.append(state.full_name())
        for child in state.children.values():
            self._walk(child, reached, out)
