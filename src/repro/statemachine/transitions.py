"""Transitions: triggers, guards, actions, and timeouts.

A :class:`Transition` fires on a named event (or on a timeout via
``after``), if its guard passes, moving the machine from ``source`` to
``target``.  Guards and actions receive ``(machine, event)`` so they can
read/write machine variables and emit outputs — this is the executable
fragment of Stateflow semantics that the paper's framework generates C
code from; here we execute it directly.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from .events import Event
from .states import State

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import Machine  # noqa: F401  (quoted forward refs below)

GuardFn = Callable[["Machine", Event], bool]
TransitionActionFn = Callable[["Machine", Event], None]

#: Reserved event name used internally for timeout triggers.
TIMEOUT_EVENT = "__timeout__"


class Transition:
    """One edge of the statechart."""

    def __init__(
        self,
        source: State,
        target: Optional[State],
        event: Optional[str] = None,
        guard: Optional[GuardFn] = None,
        action: Optional[TransitionActionFn] = None,
        after: Optional[float] = None,
        name: str = "",
        internal: bool = False,
    ) -> None:
        if event is None and after is None and guard is None:
            raise ValueError(
                "transition needs a trigger: an event, a timeout, or a guard "
                "(guard-only transitions are completion transitions)"
            )
        if event is not None and after is not None:
            raise ValueError("transition cannot have both an event and a timeout")
        if target is None and not internal:
            raise ValueError("external transition needs a target")
        self.source = source
        self.target = target
        self.event = event
        self.guard = guard
        self.action = action
        self.after = after
        self.internal = internal
        self.name = name or self._default_name()
        self.fire_count = 0

    def _default_name(self) -> str:
        trigger = self.event or (f"after({self.after})" if self.after is not None else "[guard]")
        target = self.target.name if self.target is not None else "(internal)"
        return f"{self.source.name}--{trigger}-->{target}"

    # ------------------------------------------------------------------
    def triggered_by(self, event: Event) -> bool:
        """Does this transition's trigger match the event?"""
        if self.after is not None:
            return event.name == TIMEOUT_EVENT and event.param("transition") is self
        if self.event is None:
            # completion transition: eligible on every dispatch
            return True
        return event.name == self.event

    def guard_passes(self, machine: "Machine", event: Event) -> bool:
        if self.guard is None:
            return True
        return bool(self.guard(machine, event))

    def __repr__(self) -> str:
        return f"Transition({self.name})"
