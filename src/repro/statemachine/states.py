"""Hierarchical states.

States form a tree: :class:`State` leaves and compound states with a
designated initial child.  The *configuration* of a machine is the path of
active states from the root to one leaf (single-region statecharts — the
TV control models in the paper are modelled this way; orthogonal features
like the sleep timer are handled as machine variables rather than parallel
regions, which keeps run-time comparison cheap, an explicit goal of
Sect. 4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

ActionFn = Callable[..., None]


class State:
    """One node in the state tree.

    The tree is append-only (states attach to their parent at
    construction and never re-parent), so ``path()``/``full_name()`` are
    cached lazily — ``full_name()`` sits on the expected-value hot path
    of every comparator tick via ``Machine.configuration()``.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["State"] = None,
        on_entry: Optional[ActionFn] = None,
        on_exit: Optional[ActionFn] = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.children: Dict[str, "State"] = {}
        self.initial: Optional["State"] = None
        self.on_entry = on_entry
        self.on_exit = on_exit
        self._path: Optional[Tuple["State", ...]] = None
        self._full_name: Optional[str] = None
        if parent is not None:
            if name in parent.children:
                raise ValueError(f"duplicate child state {name!r} under {parent.name}")
            parent.children[name] = self

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def set_initial(self, child: "State") -> None:
        if child.parent is not self:
            raise ValueError(f"{child.name} is not a child of {self.name}")
        self.initial = child

    def path(self) -> List["State"]:
        """Root-to-this list of states (fresh list; spine is cached)."""
        cached = self._path
        if cached is None:
            chain: List[State] = []
            node: Optional[State] = self
            while node is not None:
                chain.append(node)
                node = node.parent
            chain.reverse()
            cached = self._path = tuple(chain)
        return list(cached)

    def full_name(self) -> str:
        cached = self._full_name
        if cached is None:
            cached = self._full_name = ".".join(s.name for s in self.path())
        return cached

    def descend_to_leaf(self) -> "State":
        """Follow initial children down to a leaf."""
        node = self
        while not node.is_leaf:
            if node.initial is None:
                raise ValueError(f"compound state {node.full_name()} has no initial child")
            node = node.initial
        return node

    def is_ancestor_of(self, other: "State") -> bool:
        node: Optional[State] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:
        return f"State({self.full_name()})"


def least_common_ancestor(a: State, b: State) -> Optional[State]:
    """Deepest state that is an ancestor of both (None if disjoint trees)."""
    ancestors = set(id(s) for s in a.path())
    node: Optional[State] = b
    while node is not None:
        if id(node) in ancestors:
            return node
        node = node.parent
    return None
