"""Events for the executable state machine engine.

An :class:`Event` is a named stimulus with optional parameters and a
timestamp.  The TV specification model consumes remote-control events
(``key_power``, ``key_ttx`` ...); the awareness framework's Model Executor
feeds it the *observed* input events of the SUO (Sect. 4.3, Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class Event:
    """A stimulus delivered to a state machine."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    time: float = 0.0

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def with_time(self, time: float) -> "Event":
        return Event(self.name, dict(self.params), time)

    def __repr__(self) -> str:
        if self.params:
            return f"Event({self.name}, {self.params}, t={self.time})"
        return f"Event({self.name}, t={self.time})"


class EventQueue:
    """FIFO of pending events with deferred insertion during a step.

    Run-to-completion semantics require that events raised *by* actions
    (internal events) are processed after the current step completes; the
    queue keeps them in arrival order.
    """

    def __init__(self) -> None:
        self._items: List[Event] = []

    def push(self, event: Event) -> None:
        self._items.append(event)

    def pop(self) -> Optional[Event]:
        if not self._items:
            return None
        return self._items.pop(0)

    def __len__(self) -> int:
        return len(self._items)

    def clear(self) -> None:
        self._items.clear()
