"""The executable timed state machine.

:class:`Machine` implements run-to-completion semantics over the state
tree of :mod:`repro.statemachine.states`:

* ``dispatch(event)`` finds the innermost enabled transition along the
  active path, executes exit actions up to the least common ancestor, the
  transition action, then entry actions down to the target leaf;
* completion (eventless) transitions fire until quiescence;
* ``after`` timeouts are armed on state entry and fired by ``advance``;
* ``emit(name, value)`` publishes an *output* — the observable signal the
  awareness Comparator matches against SUO outputs (Fig. 2).

The machine is the reproduction's Stateflow: the paper generates C code
from Stateflow models and runs it in the Model Executor; we execute the
model object directly, which has the same observable behaviour.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .events import Event, EventQueue
from .states import State, least_common_ancestor
from .transitions import TIMEOUT_EVENT, Transition


class MachineError(Exception):
    """Raised on malformed machines or semantic violations."""


@dataclass(frozen=True, slots=True)
class Output:
    """One emitted observable: at ``time``, ``name`` took ``value``."""

    time: float
    name: str
    value: Any


@dataclass(slots=True)
class _Timer:
    deadline: float
    transition: Transition
    armed_in: State


class Machine:
    """A single-region hierarchical timed state machine."""

    MAX_COMPLETION_CHAIN = 64

    def __init__(self, name: str, root: State) -> None:
        self.name = name
        self.root = root
        self.vars: Dict[str, Any] = {}
        self.time = 0.0
        self.active: Optional[State] = None
        self.outputs: List[Output] = []
        self._transitions: Dict[int, List[Transition]] = {}
        self._timers: List[_Timer] = []
        self._queue = EventQueue()
        self._output_listeners: List[Callable[[Output], None]] = []
        self._in_step = False
        self.step_count = 0
        #: Nondeterministic choices observed (state, event, transitions);
        #: the model checker reads this to flag modeling errors.
        self.nondeterminism_log: List[Tuple[str, str, List[str]]] = []
        #: When True, nondeterminism raises instead of picking first-declared.
        self.strict = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_transition(self, transition: Transition) -> Transition:
        self._transitions.setdefault(id(transition.source), []).append(transition)
        return transition

    def transitions_from(self, state: State) -> List[Transition]:
        return self._transitions.get(id(state), [])

    def all_transitions(self) -> List[Transition]:
        result: List[Transition] = []
        for bucket in self._transitions.values():
            result.extend(bucket)
        return result

    def on_output(self, listener: Callable[[Output], None]) -> None:
        self._output_listeners.append(listener)

    # ------------------------------------------------------------------
    # variables and outputs (used from guards/actions)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.vars[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self.vars.get(key, default)

    def emit(self, name: str, value: Any) -> Output:
        output = Output(self.time, name, value)
        self.outputs.append(output)
        for listener in self._output_listeners:
            listener(output)
        return output

    def raise_event(self, name: str, **params: Any) -> None:
        """Queue an internal event processed after the current step."""
        self._queue.push(Event(name, params, self.time))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def initialize(self, time: float = 0.0) -> None:
        """Enter the initial configuration."""
        self.time = time
        self._timers.clear()
        self._queue.clear()
        target = self.root.descend_to_leaf()
        self._enter_path(target.path(), None)
        self.active = target
        self._run_completions()
        self._drain_queue()

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def dispatch(self, event: Event) -> bool:
        """Deliver one event; returns True if any transition fired."""
        if self.active is None:
            raise MachineError(f"machine {self.name} not initialized")
        if event.time < self.time:
            raise MachineError(
                f"event {event.name} at {event.time} is in the past (now {self.time})"
            )
        self.advance(event.time)
        fired = self._dispatch_now(event)
        self._run_completions()
        self._drain_queue()
        self.step_count += 1
        return fired

    def inject(self, name: str, time: Optional[float] = None, **params: Any) -> bool:
        """Convenience: dispatch a fresh event at ``time`` (default: now)."""
        event_time = self.time if time is None else time
        return self.dispatch(Event(name, params, event_time))

    def _dispatch_now(self, event: Event) -> bool:
        candidates = self._enabled_transitions(event)
        if not candidates:
            return False
        state, enabled = candidates
        if len(enabled) > 1:
            names = [t.name for t in enabled]
            self.nondeterminism_log.append((state.full_name(), event.name, names))
            if self.strict:
                raise MachineError(
                    f"nondeterministic choice in {state.full_name()} on "
                    f"{event.name}: {names}"
                )
        self._fire(enabled[0], event)
        return True

    def _enabled_transitions(
        self, event: Event
    ) -> Optional[Tuple[State, List[Transition]]]:
        """Innermost active state with at least one enabled transition."""
        node: Optional[State] = self.active
        while node is not None:
            enabled = []
            for transition in self.transitions_from(node):
                if not transition.triggered_by(event):
                    continue
                if transition.event is None and transition.after is None:
                    # completion transitions are handled in _run_completions
                    continue
                if transition.guard_passes(self, event):
                    enabled.append(transition)
            if enabled:
                return node, enabled
            node = node.parent
        return None

    def _fire(self, transition: Transition, event: Event) -> None:
        transition.fire_count += 1
        if transition.internal or transition.target is None:
            if transition.action is not None:
                transition.action(self, event)
            return
        source_state = transition.source
        target_leaf = transition.target.descend_to_leaf()
        lca = least_common_ancestor(source_state, transition.target)
        if lca is None:
            raise MachineError(
                f"transition {transition.name} crosses disjoint state trees"
            )
        # Self-transitions and transitions to an ancestor exit/re-enter.
        if lca is transition.target or lca is source_state:
            lca = lca.parent if lca.parent is not None else lca
        self._exit_to(lca)
        if transition.action is not None:
            transition.action(self, event)
        self._enter_from(lca, target_leaf, event)
        self.active = target_leaf

    def _exit_to(self, ancestor: State) -> None:
        """Run exit actions from the active leaf up to (excluding) ancestor."""
        node: Optional[State] = self.active
        while node is not None and node is not ancestor:
            self._disarm_timers(node)
            if node.on_exit is not None:
                node.on_exit(self)
            node = node.parent

    def _enter_from(self, ancestor: State, leaf: State, event: Optional[Event]) -> None:
        """Run entry actions from below ancestor down to leaf."""
        path: List[State] = []
        for state in leaf.path():
            if state is ancestor:
                path = []
                continue
            path.append(state)
        self._enter_path(path, event)

    def _enter_path(self, path: List[State], event: Optional[Event]) -> None:
        for state in path:
            if state.on_entry is not None:
                state.on_entry(self)
            self._arm_timers(state)

    # ------------------------------------------------------------------
    # completion transitions and internal events
    # ------------------------------------------------------------------
    def _run_completions(self) -> None:
        for _ in range(self.MAX_COMPLETION_CHAIN):
            fired = self._fire_one_completion()
            if not fired:
                return
        raise MachineError(
            f"machine {self.name}: completion transitions did not quiesce "
            f"within {self.MAX_COMPLETION_CHAIN} steps (livelock in model)"
        )

    def _fire_one_completion(self) -> bool:
        probe = Event("__completion__", {}, self.time)
        node: Optional[State] = self.active
        while node is not None:
            enabled = []
            for transition in self.transitions_from(node):
                if transition.event is not None or transition.after is not None:
                    continue
                if transition.guard_passes(self, probe):
                    enabled.append(transition)
            if enabled:
                if len(enabled) > 1:
                    self.nondeterminism_log.append(
                        (node.full_name(), "(completion)", [t.name for t in enabled])
                    )
                    if self.strict:
                        raise MachineError(
                            f"nondeterministic completion in {node.full_name()}"
                        )
                self._fire(enabled[0], probe)
                return True
            node = node.parent
        return False

    def _drain_queue(self) -> None:
        for _ in range(self.MAX_COMPLETION_CHAIN):
            event = self._queue.pop()
            if event is None:
                return
            self._dispatch_now(event)
            self._run_completions()
        raise MachineError(f"machine {self.name}: internal event storm")

    # ------------------------------------------------------------------
    # time and timers
    # ------------------------------------------------------------------
    def advance(self, to_time: float) -> int:
        """Advance model time, firing due timeouts in deadline order."""
        if to_time < self.time:
            raise MachineError("cannot advance backwards")
        fired = 0
        # Fast path: timed comparator sampling calls this every tick and
        # almost never finds a due timer — don't build a list to learn that.
        while True:
            timer = None
            for candidate in self._timers:  # re-read: _fire may disarm/re-arm
                if candidate.deadline <= to_time and (
                    timer is None or candidate.deadline < timer.deadline
                ):
                    timer = candidate
            if timer is None:
                break
            self.time = timer.deadline
            self._timers.remove(timer)
            event = Event(
                TIMEOUT_EVENT, {"transition": timer.transition}, self.time
            )
            if timer.transition.guard_passes(self, event):
                self._fire(timer.transition, event)
                self._run_completions()
                self._drain_queue()
                fired += 1
        self.time = to_time
        return fired

    def _arm_timers(self, state: State) -> None:
        for transition in self.transitions_from(state):
            if transition.after is not None:
                self._timers.append(
                    _Timer(self.time + transition.after, transition, state)
                )

    def _disarm_timers(self, state: State) -> None:
        self._timers = [t for t in self._timers if t.armed_in is not state]

    def next_timeout(self) -> Optional[float]:
        if not self._timers:
            return None
        return min(t.deadline for t in self._timers)

    # ------------------------------------------------------------------
    # snapshots (model checking, checkpointing)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Serializable machine state (for exploration and checkpoints)."""
        return {
            "active": self.active.full_name() if self.active else None,
            "vars": copy.deepcopy(self.vars),
            "time": self.time,
            "timers": [
                (t.deadline, t.transition.name, t.armed_in.full_name())
                for t in self._timers
            ],
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Restore a snapshot taken from this same machine structure."""
        self.vars = copy.deepcopy(snapshot["vars"])
        self.time = snapshot["time"]
        active_name = snapshot["active"]
        self.active = self._find_state(active_name) if active_name else None
        self._timers = []
        by_name = {t.name: t for t in self.all_transitions()}
        for deadline, tname, sname in snapshot["timers"]:
            transition = by_name[tname]
            self._timers.append(
                _Timer(deadline, transition, self._find_state(sname))
            )

    def reseed(
        self,
        leaf: str,
        time: float,
        vars: Optional[Dict[str, Any]] = None,
        timer_deadlines: Optional[Dict[str, float]] = None,
    ) -> None:
        """Force the configuration to ``leaf`` at ``time`` without running
        entry/exit actions — the monitor re-sync handshake.

        A restarted awareness monitor has missed inputs, so its model is
        stale; re-seeding adopts the SUO's *observed* state instead of
        replaying the missed history.  ``leaf`` is a bare state name (or a
        dotted full name); ``vars`` updates model variables in place; and
        every ``after`` transition armed in the adopted configuration is
        (re)armed at ``time + after`` unless ``timer_deadlines`` pins the
        deadline for that state by name (used when the SUO exposes the
        true expiry of a transient, e.g. an on-screen volume bar).
        """
        state = self._find_state(leaf) if "." in leaf else self._find_leaf(leaf)
        if time < self.time:
            raise MachineError("cannot reseed backwards in time")
        if vars:
            self.vars.update(vars)
        self.time = time
        self._queue.clear()
        self._timers = []
        self.active = state.descend_to_leaf()
        deadlines = timer_deadlines or {}
        for node in self.active.path():
            for transition in self.transitions_from(node):
                if transition.after is None:
                    continue
                deadline = deadlines.get(node.name, self.time + transition.after)
                self._timers.append(_Timer(deadline, transition, node))

    def _find_leaf(self, name: str) -> State:
        """Locate a state by bare name anywhere in the tree."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.name == name:
                return node
            stack.extend(node.children.values())
        raise MachineError(f"unknown state {name!r}")

    def _find_state(self, full_name: str) -> State:
        parts = full_name.split(".")
        node = self.root
        if parts[0] != node.name:
            raise MachineError(f"unknown state {full_name}")
        for part in parts[1:]:
            node = node.children[part]
        return node

    def configuration(self) -> str:
        """Readable active-state path (observable internal state)."""
        if self.active is None:
            return "(uninitialized)"
        return self.active.full_name()
