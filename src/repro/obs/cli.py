"""``python -m repro.obs`` — record, query, trend, compare, export-trace.

The observability subsystem's human/CI surface.  Everything operates on
one append-only SQLite history file (``--db``, default
``BENCH_history.sqlite`` in the working directory) and the same report
dicts ``benchmarks/run_all.py`` produces, so a CI step and a developer
at a shell ask identical questions:

    python -m repro.obs record --bench-report /tmp/bench.json
    python -m repro.obs record --scenario recovery-ladder-drill --seed 7
    python -m repro.obs query
    python -m repro.obs trend                # nonzero exit on a violation
    python -m repro.obs compare              # latest two recorded runs
    python -m repro.obs export-trace --scenario player-decoder-drill \\
        --out episode_trace.json             # Chrome trace + timeline

``trend`` and ``compare`` exit 0 with a notice when the history is too
short — a fresh checkout or a just-created CI cache must not fail its
first run.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Any, Dict, List, Optional

from .history import RunHistory
from .spans import chrome_trace, text_timeline
from .trend import compare_bench_runs, evaluate_trends

DEFAULT_DB = "BENCH_history.sqlite"


def _run_campaign(name: str, seed: int, shards: Optional[int]):
    """Run one library scenario with span recording enabled; returns
    the CampaignReport (its ``spans`` block carries the episodes)."""
    from ..campaign import ProcessShardBackend, run_cell
    from ..scenarios import get_scenario

    spec = replace(get_scenario(name), record_spans=True)
    backend = None if not shards else ProcessShardBackend(shards=shards)
    return run_cell(spec, seed, backend=backend)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_record(args: argparse.Namespace) -> int:
    with RunHistory(args.db) as history:
        if args.bench_report:
            with open(args.bench_report, "r", encoding="utf-8") as handle:
                report = json.load(handle)
            run_id = history.record_run(
                report, label=args.label, git_rev=args.git_rev
            )
            print(
                f"recorded run {run_id} (mode={report.get('mode')}) "
                f"into {args.db}"
            )
            return 0
        report = _run_campaign(args.scenario, args.seed, args.shards)
        campaign_id = history.record_campaign(report, git_rev=args.git_rev)
        spans = report.spans or {}
        print(
            f"recorded campaign {campaign_id}: {report.scenario} seed "
            f"{report.seed} ({report.backend}) — "
            f"{spans.get('completed', 0)} episodes, span digest "
            f"{(spans.get('forest_digest') or '')[:12]} into {args.db}"
        )
        return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with RunHistory(args.db) as history:
        counts = history.counts()
        print(
            f"{args.db}: {counts['runs']} runs, {counts['campaigns']} "
            f"campaigns, {counts['episodes']} episodes"
        )
        runs = history.runs(limit=args.limit)
        if runs:
            print("runs (newest first):")
            for row in runs:
                rev = (row["git_rev"] or "-")[:10]
                label = row["label"] or "-"
                print(
                    f"  #{row['id']:<4} {row['recorded_at']}  "
                    f"rev={rev:<10} mode={row['mode'] or '-':<5} {label}"
                )
        campaigns = history.campaigns(scenario=args.scenario, limit=args.limit)
        if campaigns:
            print("campaigns (newest first):")
            for row in campaigns:
                print(
                    f"  #{row['id']:<4} {row['scenario']:<24} "
                    f"seed={row['seed']} {row['backend']:<18} "
                    f"detection={row['detection_rate']:.4f} "
                    f"recovered={row['recovered']} "
                    f"spans={(row['span_digest'] or '-')[:12]}"
                )
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    with RunHistory(args.db) as history:
        reports = history.run_reports(limit=args.window + 1)
    if len(reports) < 2:
        print(
            f"insufficient history for a trend ({len(reports)} run(s) "
            f"recorded, need 2+) — nothing to gate"
        )
        return 0
    current, priors = reports[0], reports[1:]
    failures = evaluate_trends(
        current,
        priors,
        window=args.window,
        max_regression=args.max_regression,
        max_drift=args.max_drift,
    )
    print(
        f"trend over {len(priors) + 1} runs "
        f"(window {args.window}, regression {args.max_regression:.0%}, "
        f"drift {args.max_drift}):"
    )
    if not failures:
        print("  ok — no perf or detection drift")
        return 0
    for failure in failures:
        print(f"  FAILED: {failure}")
    return 1


def _load_compare_pair(args: argparse.Namespace):
    if args.reports:
        loaded = []
        for path in args.reports:
            with open(path, "r", encoding="utf-8") as handle:
                loaded.append(json.load(handle))
        return loaded[0], loaded[1], f"{args.reports[0]} -> {args.reports[1]}"
    with RunHistory(args.db) as history:
        if args.runs:
            old = history.run_report(args.runs[0])
            new = history.run_report(args.runs[1])
            if old is None or new is None:
                missing = args.runs[0] if old is None else args.runs[1]
                raise SystemExit(f"run #{missing} not found in {args.db}")
            return old, new, f"run #{args.runs[0]} -> run #{args.runs[1]}"
        rows = history.runs(limit=2)
        if len(rows) < 2:
            return None, None, None
        new_id, old_id = rows[0]["id"], rows[1]["id"]
        return (
            history.run_report(old_id),
            history.run_report(new_id),
            f"run #{old_id} -> run #{new_id}",
        )


def _cmd_compare(args: argparse.Namespace) -> int:
    old, new, label = _load_compare_pair(args)
    if old is None:
        print("insufficient history to compare (need 2+ recorded runs)")
        return 0
    print(f"comparing {label}:")
    for line in compare_bench_runs(old, new):
        print(line)
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from ..campaign import run_cell_detailed
    from ..scenarios import get_scenario

    spec = replace(get_scenario(args.scenario), record_spans=True)
    cell = run_cell_detailed(spec, args.seed)
    recorder = cell.span_recorder
    episodes: List[Dict[str, Any]] = list(recorder.episodes)
    trace = chrome_trace(episodes)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{args.scenario} seed {args.seed}: {recorder.completed} episodes "
        f"({recorder.open_episodes} still open), span digest "
        f"{recorder.forest_digest()[:12]}"
    )
    print(f"wrote {len(trace['traceEvents'])} trace events to {args.out}")
    if args.timeline and episodes:
        print(text_timeline(episodes))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_db(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db", default=DEFAULT_DB,
            help=f"history SQLite file (default: {DEFAULT_DB})",
        )

    record = commands.add_parser(
        "record", help="append a bench report or a fresh campaign run"
    )
    add_db(record)
    source = record.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--bench-report", help="a run_all JSON report file to append"
    )
    source.add_argument(
        "--scenario", help="library scenario to run (spans enabled)"
    )
    record.add_argument("--seed", type=int, default=7)
    record.add_argument(
        "--shards", type=int, default=0,
        help="run sharded with this many shards (default: serial)",
    )
    record.add_argument("--label", help="free-form label (e.g. CI sha)")
    record.add_argument(
        "--git-rev", help="override the recorded git revision"
    )
    record.set_defaults(func=_cmd_record)

    query = commands.add_parser("query", help="list recorded runs/campaigns")
    add_db(query)
    query.add_argument("--scenario", help="filter campaigns by scenario")
    query.add_argument("--limit", type=int, default=10)
    query.set_defaults(func=_cmd_query)

    trend = commands.add_parser(
        "trend", help="apply trend rules to the newest recorded run"
    )
    add_db(trend)
    trend.add_argument("--window", type=int, default=5)
    trend.add_argument("--max-regression", type=float, default=0.30)
    trend.add_argument("--max-drift", type=float, default=0.25)
    trend.set_defaults(func=_cmd_trend)

    compare = commands.add_parser(
        "compare", help="diff two runs (default: the latest two recorded)"
    )
    add_db(compare)
    compare.add_argument(
        "--runs", type=int, nargs=2, metavar=("OLD", "NEW"),
        help="two recorded run ids to compare",
    )
    compare.add_argument(
        "--reports", nargs=2, metavar=("OLD.json", "NEW.json"),
        help="compare two report files instead of the history store",
    )
    compare.set_defaults(func=_cmd_compare)

    export = commands.add_parser(
        "export-trace",
        help="run a scenario with spans and export a Chrome trace",
    )
    export.add_argument("--scenario", default="player-decoder-drill")
    export.add_argument("--seed", type=int, default=7)
    export.add_argument("--out", default="episode_trace.json")
    export.add_argument(
        "--no-timeline", dest="timeline", action="store_false",
        help="skip printing the plain-text episode timeline",
    )
    export.set_defaults(func=_cmd_export_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
