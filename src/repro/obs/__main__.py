"""Entry point: ``python -m repro.obs`` (see :mod:`repro.obs.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # downstream pager/head closed the pipe — exit quietly like
        # any well-behaved unix filter
        sys.stderr.close()
        sys.exit(0)
