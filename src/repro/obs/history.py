"""Append-only run history: every campaign and bench run, queryable.

``BENCH_runtime.json`` is a snapshot — each run overwrites the last, so
"did detection drift over the last five PRs?" was unanswerable from the
repo.  :class:`RunHistory` is the durable complement: an append-only
SQLite store recording

* ``runs``      — one row per ``benchmarks/run_all.py`` report (full
  JSON, plus git rev / bench mode / recorded-at for provenance);
* ``campaigns`` — one row per :class:`~repro.campaign.CampaignReport`
  (headline rates and both determinism digests indexed as columns, full
  JSON alongside);
* ``episodes``  — span-derived per-episode rows (one per completed
  fault episode the campaign's :class:`~repro.obs.spans.SpanRecorder`
  sampled): injection/detection/repair times, TTR, rung count,
  rebind mode, suspect, hit, and the episode digest.

Writes only ever INSERT; trend analysis (:mod:`repro.obs.trend`) and
the ``python -m repro.obs`` CLI read newest-first.  SQLite is stdlib,
single-file, and concurrent-reader-safe — exactly enough for a
per-checkout history that CI persists as a cached artifact.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at TEXT NOT NULL,
    git_rev     TEXT,
    label       TEXT,
    mode        TEXT,
    report      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id           INTEGER REFERENCES runs(id),
    recorded_at      TEXT NOT NULL,
    git_rev          TEXT,
    scenario         TEXT NOT NULL,
    seed             INTEGER,
    backend          TEXT,
    members          INTEGER,
    detection_rate   REAL,
    false_alarms     INTEGER,
    recovered        INTEGER,
    events_per_sec   REAL,
    telemetry_digest TEXT,
    span_digest      TEXT,
    report           TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS episodes (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    suo_id      TEXT,
    wave        TEXT,
    fault       TEXT,
    component   TEXT,
    injected_at REAL,
    detected_at REAL,
    repaired_at REAL,
    ttr         REAL,
    rungs       INTEGER,
    mode        TEXT,
    suspect     TEXT,
    hit         INTEGER,
    digest      TEXT
);
CREATE TABLE IF NOT EXISTS fuzz_corpus (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_at TEXT NOT NULL,
    git_rev     TEXT,
    spec_hash   TEXT NOT NULL UNIQUE,
    name        TEXT,
    seed        INTEGER,
    origin      TEXT,
    verdict     TEXT,
    signature   TEXT,
    novel_keys  TEXT,
    coverage    TEXT,
    spec        TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_cells (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id      TEXT NOT NULL,
    spec_hash        TEXT NOT NULL,
    scenario         TEXT,
    seed             INTEGER NOT NULL,
    backend          TEXT,
    requested_shards TEXT,
    resolved_shards  INTEGER NOT NULL,
    status           TEXT NOT NULL DEFAULT 'running',
    created_at       TEXT NOT NULL,
    finished_at      TEXT,
    git_rev          TEXT,
    telemetry_digest TEXT,
    span_digest      TEXT,
    spec             TEXT NOT NULL,
    UNIQUE (campaign_id, spec_hash, seed)
);
CREATE TABLE IF NOT EXISTS campaign_shards (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    cell_id      INTEGER NOT NULL REFERENCES campaign_cells(id),
    campaign_id  TEXT NOT NULL,
    spec_hash    TEXT NOT NULL,
    seed         INTEGER NOT NULL,
    shard_id     INTEGER NOT NULL,
    attempt      INTEGER NOT NULL DEFAULT 0,
    worker       TEXT,
    recorded_at  TEXT NOT NULL,
    trace_digest TEXT,
    result       TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_campaigns_scenario
    ON campaigns (scenario, id);
CREATE INDEX IF NOT EXISTS idx_episodes_campaign
    ON episodes (campaign_id);
CREATE INDEX IF NOT EXISTS idx_fuzz_verdict
    ON fuzz_corpus (verdict, id);
CREATE INDEX IF NOT EXISTS idx_campaign_cells_campaign
    ON campaign_cells (campaign_id, id);
CREATE INDEX IF NOT EXISTS idx_campaign_shards_cell
    ON campaign_shards (cell_id, shard_id, id);
"""


def current_git_rev(cwd: Optional[str] = None) -> Optional[str]:
    """The checkout's HEAD commit, or None outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class RunHistory:
    """One append-only SQLite history file (created on first use)."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        if directory and not os.path.isdir(directory):
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunHistory":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writes (INSERT only)
    # ------------------------------------------------------------------
    def record_run(
        self,
        report: Dict[str, Any],
        label: Optional[str] = None,
        git_rev: Optional[str] = None,
    ) -> int:
        """Append one run_all report; returns its run id."""
        cursor = self._conn.execute(
            "INSERT INTO runs (recorded_at, git_rev, label, mode, report)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                _utcnow(),
                git_rev if git_rev is not None else current_git_rev(),
                label,
                report.get("mode"),
                json.dumps(report, sort_keys=True),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def record_campaign(
        self,
        report: Any,
        run_id: Optional[int] = None,
        git_rev: Optional[str] = None,
    ) -> int:
        """Append one campaign report (a
        :class:`~repro.campaign.CampaignReport` or its ``as_dict()``),
        plus one episode row per span sample it carries; returns the
        campaign id."""
        data = report.as_dict() if hasattr(report, "as_dict") else dict(report)
        spans = data.get("spans") or {}
        recovery = data.get("telemetry_summary", {}).get("recovery", {})
        cursor = self._conn.execute(
            "INSERT INTO campaigns (run_id, recorded_at, git_rev, scenario,"
            " seed, backend, members, detection_rate, false_alarms,"
            " recovered, events_per_sec, telemetry_digest, span_digest,"
            " report) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                _utcnow(),
                git_rev if git_rev is not None else current_git_rev(),
                data.get("scenario"),
                data.get("seed"),
                data.get("backend"),
                data.get("members"),
                data.get("detection_rate"),
                len(data.get("false_alarms", [])),
                recovery.get("recovered", 0),
                data.get("events_per_sec"),
                data.get("telemetry_digest"),
                spans.get("forest_digest"),
                json.dumps(data, sort_keys=True),
            ),
        )
        campaign_id = int(cursor.lastrowid)
        digest_by_key = {
            (str(suo), str(wave)): digest
            for suo, wave, digest in spans.get("digests", [])
        }
        for episode in spans.get("samples", []):
            closing = episode.get("rungs", [])[-1:] or [{}]
            self._conn.execute(
                "INSERT INTO episodes (campaign_id, suo_id, wave, fault,"
                " component, injected_at, detected_at, repaired_at, ttr,"
                " rungs, mode, suspect, hit, digest)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    episode.get("suo"),
                    str(episode.get("wave")),
                    episode.get("fault"),
                    episode.get("component"),
                    episode.get("injected_at"),
                    episode.get("detected_at"),
                    episode.get("repaired_at"),
                    episode.get("ttr"),
                    len(episode.get("rungs", [])),
                    episode.get("repair_mode"),
                    (episode.get("ranks", [{}]) or [{}])[-1].get("suspect"),
                    closing[0].get("hit"),
                    digest_by_key.get(
                        (str(episode.get("suo")), str(episode.get("wave")))
                    ),
                ),
            )
        self._conn.commit()
        return campaign_id

    def record_fuzz_entry(
        self,
        spec_hash: str,
        spec_json: str,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        origin: Optional[str] = None,
        verdict: Optional[str] = None,
        signature: Optional[str] = None,
        novel_keys: Optional[List[str]] = None,
        coverage: Optional[List[str]] = None,
        git_rev: Optional[str] = None,
    ) -> Optional[int]:
        """Append one fuzz-corpus entry (:mod:`repro.fuzz`): the spec's
        canonical JSON keyed by its :func:`~repro.scenarios.spec_hash`.
        A hash already in the store is left untouched (the corpus is a
        set); returns the row id, or None for such a duplicate."""
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO fuzz_corpus (recorded_at, git_rev,"
            " spec_hash, name, seed, origin, verdict, signature,"
            " novel_keys, coverage, spec)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                _utcnow(),
                git_rev if git_rev is not None else current_git_rev(),
                spec_hash,
                name,
                seed,
                origin,
                verdict,
                signature,
                json.dumps(sorted(novel_keys or [])),
                json.dumps(sorted(coverage or [])),
                spec_json,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid) if cursor.rowcount else None

    # ------------------------------------------------------------------
    # campaign checkpoint rows (PR 9: distributed execution + resume)
    # ------------------------------------------------------------------
    def begin_campaign_cell(
        self,
        campaign_id: str,
        spec_hash: str,
        scenario: str,
        seed: int,
        backend: Optional[str],
        requested_shards: Optional[str],
        resolved_shards: int,
        spec_json: str,
        git_rev: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Register one (campaign, cell) in the checkpoint registry.

        A row keyed ``(campaign_id, spec_hash, seed)`` that already
        exists wins: the *recorded* shard resolution is returned, so a
        resumed cell partitions exactly like the interrupted original —
        including an autotuned count the original host picked.
        """
        existing = self._conn.execute(
            "SELECT * FROM campaign_cells WHERE campaign_id = ?"
            " AND spec_hash = ? AND seed = ?",
            (campaign_id, spec_hash, seed),
        ).fetchone()
        if existing is not None:
            return dict(existing)
        self._conn.execute(
            "INSERT INTO campaign_cells (campaign_id, spec_hash, scenario,"
            " seed, backend, requested_shards, resolved_shards, status,"
            " created_at, git_rev, spec)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, 'running', ?, ?, ?)",
            (
                campaign_id,
                spec_hash,
                scenario,
                seed,
                backend,
                requested_shards,
                resolved_shards,
                _utcnow(),
                git_rev if git_rev is not None else current_git_rev(),
                spec_json,
            ),
        )
        self._conn.commit()
        row = self._conn.execute(
            "SELECT * FROM campaign_cells WHERE campaign_id = ?"
            " AND spec_hash = ? AND seed = ?",
            (campaign_id, spec_hash, seed),
        ).fetchone()
        return dict(row)

    def record_campaign_shard(
        self,
        cell_id: int,
        campaign_id: str,
        spec_hash: str,
        seed: int,
        shard_id: int,
        attempt: int,
        worker: str,
        trace_digest: Optional[str],
        result_json: str,
    ) -> int:
        """Append one completed shard's mergeable result (INSERT only:
        a retried shard appends a higher attempt, never overwrites)."""
        cursor = self._conn.execute(
            "INSERT INTO campaign_shards (cell_id, campaign_id, spec_hash,"
            " seed, shard_id, attempt, worker, recorded_at, trace_digest,"
            " result) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cell_id, campaign_id, spec_hash, seed, shard_id, attempt,
                worker, _utcnow(), trace_digest, result_json,
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def campaign_shard_rows(self, cell_id: int) -> List[Dict[str, Any]]:
        """The newest recorded result per shard of one cell."""
        rows = self._conn.execute(
            "SELECT * FROM campaign_shards WHERE cell_id = ?"
            " ORDER BY shard_id, id",
            (cell_id,),
        ).fetchall()
        latest: Dict[int, Dict[str, Any]] = {}
        for row in rows:
            latest[row["shard_id"]] = dict(row)
        return [latest[shard_id] for shard_id in sorted(latest)]

    def campaign_shard_log(self, cell_id: int) -> List[Dict[str, Any]]:
        """Every recorded shard attempt of one cell, oldest first.

        Unlike :meth:`campaign_shard_rows` nothing is deduplicated: a
        shard retried after worker loss appears once per attempt, which
        is what per-shard progress reporting counts.  The ``result``
        payload column is omitted — status views never need it.
        """
        rows = self._conn.execute(
            "SELECT id, cell_id, campaign_id, spec_hash, seed, shard_id,"
            " attempt, worker, recorded_at, trace_digest"
            " FROM campaign_shards WHERE cell_id = ? ORDER BY id",
            (cell_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def finish_campaign_cell(
        self,
        cell_id: int,
        telemetry_digest: str,
        span_digest: Optional[str],
    ) -> None:
        """Mark a cell complete with its merged determinism witnesses.

        The one sanctioned UPDATE in the store: the cells table is a job
        registry (what is running / resumable / done), not history — the
        durable per-shard results in ``campaign_shards`` stay
        append-only.
        """
        self._conn.execute(
            "UPDATE campaign_cells SET status = 'complete',"
            " finished_at = ?, telemetry_digest = ?, span_digest = ?"
            " WHERE id = ?",
            (_utcnow(), telemetry_digest, span_digest, cell_id),
        )
        self._conn.commit()

    def campaign_cells(
        self, campaign_id: Optional[str] = None, limit: int = 50
    ) -> List[Dict[str, Any]]:
        """Checkpoint cell rows — all of one campaign (oldest first, the
        grid order), or the newest rows across campaigns."""
        if campaign_id is not None:
            rows = self._conn.execute(
                "SELECT * FROM campaign_cells WHERE campaign_id = ?"
                " ORDER BY id",
                (campaign_id,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM campaign_cells ORDER BY id DESC LIMIT ?",
                (limit,),
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # reads (newest first)
    # ------------------------------------------------------------------
    def runs(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Recent runs, newest first, without the report payload."""
        rows = self._conn.execute(
            "SELECT id, recorded_at, git_rev, label, mode FROM runs"
            " ORDER BY id DESC LIMIT ?",
            (limit,),
        ).fetchall()
        return [dict(row) for row in rows]

    def run_report(self, run_id: int) -> Optional[Dict[str, Any]]:
        row = self._conn.execute(
            "SELECT report FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        return json.loads(row["report"]) if row else None

    def run_reports(
        self, limit: int = 5, before_id: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Recent run reports, newest first — the trend window.

        ``before_id`` excludes the given run and everything after it
        (pass the just-recorded run's id to trend against its priors).
        """
        if before_id is None:
            rows = self._conn.execute(
                "SELECT report FROM runs ORDER BY id DESC LIMIT ?",
                (limit,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT report FROM runs WHERE id < ?"
                " ORDER BY id DESC LIMIT ?",
                (before_id, limit),
            ).fetchall()
        return [json.loads(row["report"]) for row in rows]

    def campaigns(
        self, scenario: Optional[str] = None, limit: int = 20
    ) -> List[Dict[str, Any]]:
        """Recent campaign rows, newest first (headline columns only)."""
        query = (
            "SELECT id, run_id, recorded_at, git_rev, scenario, seed,"
            " backend, members, detection_rate, false_alarms, recovered,"
            " events_per_sec, telemetry_digest, span_digest FROM campaigns"
        )
        params: tuple = ()
        if scenario is not None:
            query += " WHERE scenario = ?"
            params = (scenario,)
        query += " ORDER BY id DESC LIMIT ?"
        rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [dict(row) for row in rows]

    def campaign_report(self, campaign_id: int) -> Optional[Dict[str, Any]]:
        row = self._conn.execute(
            "SELECT report FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        return json.loads(row["report"]) if row else None

    def episodes(self, campaign_id: int) -> List[Dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT * FROM episodes WHERE campaign_id = ? ORDER BY id",
            (campaign_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def fuzz_entries(
        self, verdict: Optional[str] = None, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """Fuzz-corpus rows, newest first, coverage/novel keys decoded."""
        query = (
            "SELECT id, recorded_at, git_rev, spec_hash, name, seed,"
            " origin, verdict, signature, novel_keys, coverage, spec"
            " FROM fuzz_corpus"
        )
        params: tuple = ()
        if verdict is not None:
            query += " WHERE verdict = ?"
            params = (verdict,)
        query += " ORDER BY id DESC LIMIT ?"
        rows = self._conn.execute(query, params + (limit,)).fetchall()
        entries = []
        for row in rows:
            entry = dict(row)
            entry["novel_keys"] = json.loads(entry["novel_keys"] or "[]")
            entry["coverage"] = json.loads(entry["coverage"] or "[]")
            entries.append(entry)
        return entries

    def fuzz_coverage(self) -> List[str]:
        """The union of coverage keys over every stored corpus entry —
        what a resumed fuzz run counts as "already seen"."""
        seen: set = set()
        for row in self._conn.execute(
            "SELECT coverage FROM fuzz_corpus"
        ).fetchall():
            seen.update(json.loads(row["coverage"] or "[]"))
        return sorted(seen)

    def counts(self) -> Dict[str, int]:
        """Row counts per table (used by the CLI's query summary)."""
        return {
            table: self._conn.execute(
                f"SELECT COUNT(*) AS n FROM {table}"
            ).fetchone()["n"]
            for table in ("runs", "campaigns", "episodes", "fuzz_corpus")
        }
