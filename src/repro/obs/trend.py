"""Trend rules over the run history, and run-to-run comparison.

The single-snapshot gates in ``benchmarks/run_all.py`` catch a
regression against one recorded floor; these rules catch the slower
failure modes a snapshot cannot see — a perf slide spread over several
PRs, or detection quietly decaying while every individual run still
clears its absolute gate.  Both functions are **pure over report
dicts** (the same discipline as ``evaluate_report``), so unit tests and
CI steps apply exactly the rules the runner enforces; the history
store's job is only to supply the prior-report window.

Rules (:func:`evaluate_trends`):

* **rolling perf floor** — the fleet and scenarios probes must stay
  within ``max_regression`` (default 30%) of the *median* of the prior
  window.  The median, not the mean: one noisy CI run must not drag the
  floor down with it.  Honors the same skip as the absolute floor gate
  (quick mode on a 1-CPU host measures the container, not the runtime)
  — and reports the skip rather than staying silent.
* **detection-rate drift** — each gated scenario's detection rate must
  stay within ``max_drift`` (default 0.25) of the prior-window median.

Fewer than ``min_history`` prior runs yields no failures (a fresh
checkout or a just-created CI cache must not fail its first run).
"""

from __future__ import annotations

from statistics import median
from typing import Any, Dict, List, Optional

#: Prior runs required before trend rules engage.
MIN_HISTORY = 1

#: The run_all probes whose events/sec the rolling floor tracks.
PERF_PROBES = ("fleet", "scenarios")


def _probe_eps(report: Dict[str, Any], probe: str) -> float:
    return float(report.get(probe, {}).get("events_per_sec", 0) or 0)


def _detection_rates(report: Dict[str, Any]) -> Dict[str, float]:
    return {
        name: float(cell.get("detection_rate", 0.0))
        for name, cell in report.get("detection", {}).items()
        if isinstance(cell, dict) and "detection_rate" in cell
    }


def perf_skip_reason(report: Dict[str, Any]) -> Optional[str]:
    """Why wall-clock perf rules do not apply to this report (or None).

    Same rule as the absolute PERF_FLOOR gate: quick mode on a 1-CPU
    host measures the container, not the runtime."""
    cpu_count = report.get("sharded", {}).get("cpu_count") or 0
    if report.get("mode") == "quick" and cpu_count <= 1:
        return (
            f"quick mode on {cpu_count} CPU measures the container, "
            "not the runtime"
        )
    return None


def evaluate_trends(
    current: Dict[str, Any],
    priors: List[Dict[str, Any]],
    window: int = 5,
    max_regression: float = 0.30,
    max_drift: float = 0.25,
    min_history: int = MIN_HISTORY,
) -> List[str]:
    """Every trend rule ``current`` violates against its prior window.

    ``priors`` is newest-first (as :meth:`RunHistory.run_reports`
    returns them); only the first ``window`` are consulted."""
    failures: List[str] = []
    priors = priors[:window]
    if len(priors) < min_history:
        return failures
    if perf_skip_reason(current) is None:
        for probe in PERF_PROBES:
            history = [
                _probe_eps(prior, probe) for prior in priors
                if _probe_eps(prior, probe) > 0
                and perf_skip_reason(prior) is None
            ]
            measured = _probe_eps(current, probe)
            if not history or measured <= 0:
                continue
            floor = median(history) * (1.0 - max_regression)
            if measured < floor:
                failures.append(
                    f"{probe} throughput {measured:,.0f} events/sec is more "
                    f"than {max_regression:.0%} below the {len(history)}-run "
                    f"rolling median of {median(history):,.0f} "
                    "(trend perf floor)"
                )
    current_rates = _detection_rates(current)
    for name in sorted(current_rates):
        history = [
            _detection_rates(prior)[name] for prior in priors
            if name in _detection_rates(prior)
        ]
        if not history:
            continue
        baseline = median(history)
        if current_rates[name] < baseline - max_drift:
            failures.append(
                f"{name} detection rate {current_rates[name]:.4f} drifted "
                f"more than {max_drift} below the {len(history)}-run "
                f"rolling median of {baseline:.4f} (detection drift)"
            )
    return failures


# ----------------------------------------------------------------------
# run comparison (the CLI's `compare` subcommand)
# ----------------------------------------------------------------------
def _delta(old: float, new: float) -> str:
    if old:
        return f"{(new - old) / old:+.1%}"
    return "n/a" if not new else "+inf"


def compare_bench_runs(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[str]:
    """Human-readable diff of two run_all reports: events/s, detection
    rates, diagnosis accuracy, and per-mode TTR."""
    lines: List[str] = []
    lines.append("throughput (events/sec):")
    for label, getter in (
        ("kernel", lambda r: float(r.get("kernel_events_per_sec", 0) or 0)),
        ("fleet", lambda r: _probe_eps(r, "fleet")),
        ("scenarios", lambda r: _probe_eps(r, "scenarios")),
    ):
        a, b = getter(old), getter(new)
        lines.append(f"  {label:<10} {a:>12,.0f} -> {b:>12,.0f}  {_delta(a, b)}")
    old_rates, new_rates = _detection_rates(old), _detection_rates(new)
    if old_rates or new_rates:
        lines.append("detection rate:")
        for name in sorted(set(old_rates) | set(new_rates)):
            a = old_rates.get(name, 0.0)
            b = new_rates.get(name, 0.0)
            lines.append(f"  {name:<24} {a:>7.4f} -> {b:>7.4f}")
    old_diag = old.get("diagnosis", {})
    new_diag = new.get("diagnosis", {})
    if old_diag or new_diag:
        lines.append("diagnosis (accuracy | targeted/full TTR range):")
        for name in sorted(set(old_diag) | set(new_diag)):
            row = [f"  {name:<24}"]
            for report in (old_diag, new_diag):
                cell = report.get(name, {})
                accuracy = cell.get("localization_accuracy", 0.0)
                ttr = cell.get("ttr", {})
                parts = []
                for mode in ("targeted", "full"):
                    block = ttr.get(mode, {})
                    if block.get("count", 0):
                        parts.append(
                            f"{mode} {block.get('min', 0.0):.1f}"
                            f"-{block.get('max', 0.0):.1f}s"
                        )
                row.append(
                    f"{accuracy:.4f} | {', '.join(parts) if parts else '-'}"
                )
            lines.append(" -> ".join(row))
    return lines
