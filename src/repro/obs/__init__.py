"""``repro.obs`` — causal observability over the awareness runtime.

The paper's central constraint is that observation must not degrade the
observed product (Sect. 2), yet its whole argument rests on being able
to *see* the awareness → diagnosis → recovery chain working.  Until this
package, the repo could only report that chain as aggregate counters
(``telemetry_summary["recovery"]`` / ``["diagnosis"]``) and every
perf/detection trend lived in one overwritable ``BENCH_runtime.json``
snapshot.  ``repro.obs`` adds the missing layer in three pieces:

* :mod:`repro.obs.spans`   — :class:`SpanRecorder`: a deterministic,
  sim-time-keyed subscriber that stitches each fault episode into a
  causal span tree (injection → first comparator deviation → detection
  → SFL ranking → each recovery rung → repair/TTR), with bounded memory
  and exporters to Chrome ``trace_event`` JSON and a plain-text episode
  timeline.  **Off by default**; when off, the only cost is a handful
  of marker publishes on the silent ``obs.*`` namespace — the ``suo.*``
  event stream, trace digest, and telemetry digest are byte-identical.
* :mod:`repro.obs.history` — :class:`RunHistory`: an append-only SQLite
  store of every ``benchmarks/run_all.py`` report and every
  :class:`~repro.campaign.CampaignReport`, each carrying its git rev,
  bench mode, digests, and span-derived per-episode rows — the
  queryable cross-PR record the ROADMAP's campaign-as-a-service item
  asks for.
* :mod:`repro.obs.trend`   — trend rules over that history (N-run
  rolling perf floor, detection-rate drift) plus run comparison, shared
  by ``evaluate_report`` and the CLI.

``python -m repro.obs`` exposes ``record`` / ``query`` / ``trend`` /
``compare`` / ``export-trace`` so CI and humans can diff two revisions'
detection, diagnosis accuracy, TTR, and events/s.  See
docs/OBSERVABILITY.md.
"""

from .history import RunHistory, current_git_rev
from .spans import (
    SpanRecorder,
    chrome_trace,
    merge_span_blocks,
    span_forest_digest,
    text_timeline,
)
from .trend import compare_bench_runs, evaluate_trends

__all__ = [
    "RunHistory",
    "SpanRecorder",
    "chrome_trace",
    "compare_bench_runs",
    "current_git_rev",
    "evaluate_trends",
    "merge_span_blocks",
    "span_forest_digest",
    "text_timeline",
]
