"""Causal spans: stitch each fault episode into a deterministic tree.

The telemetry hub answers "how many / how fast" in aggregate; this
module answers "what happened to THIS member, in order": a
:class:`SpanRecorder` subscribes to the runtime bus and reconstructs
every fault episode as a causal span tree —

    fault injection
    └─ latent      (injection → first comparator deviation)
       └─ detect   (first deviation → the error report firing)
          └─ sfl-rank  (the spectrum ranking consulted at rebind)
             └─ rung*  (each recovery action, with its downtime)
                └─ repair  (the episode closing, carrying its TTR)

keyed entirely to **simulated** time, so the same seeded campaign
reconstructs byte-identical trees run over run — and shard over shard.

Overhead discipline (the paper's Sect. 2 constraint, enforced by
``bench_e13_overhead``): the recorder is off by default and costs
nothing on the hot path when on.  It never touches the ``suo.*``
firehose — it subscribes to each member's **exact** ``suo.<id>.error``
topic (errors are rare by construction) plus one ``obs.*`` wildcard
carrying the span *markers* the recovery harness and diagnoser publish.
Markers live on their own ``obs.<suo_id>.span`` namespace precisely so
that no existing ``suo.*`` subscriber — the fleet trace digest, the
telemetry hub — can see them: with the recorder disabled the markers
publish into silence (an O(1) empty-table dispatch) and every existing
digest stays byte-identical.

Memory is bounded: full episode records live in a ring buffer (newest
``ring`` episodes) plus a seeded Algorithm-R reservoir (a uniform sample
of the whole campaign); per-episode SHA-256 digests are kept for all
completed episodes (~80 bytes each) because they are the shard-invariant
determinism witness — :func:`span_forest_digest` hashes the sorted
digest triples, and a serial run and any sharding of it agree on it.

Exporters: :func:`chrome_trace` renders episodes as Chrome
``trace_event`` JSON (load it at ``chrome://tracing`` or in Perfetto);
:func:`text_timeline` renders a plain-text episode timeline.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from ..runtime.bus import EventBus, Subscription

#: Marker kinds the recorder understands (the ``ev`` key of dicts
#: published on ``obs.<suo_id>.span``).
MARKER_KINDS = ("inject", "sfl-rank", "rung", "repair")

#: How many retained sample episodes a mergeable block ships, and the
#: default reservoir capacity.  Sized so the library drills (≤ a few
#: dozen episodes) retain everything — which makes the merged sample
#: list identical between a serial run and any sharding of it — while a
#: million-episode soak still ships a bounded block.
DEFAULT_RESERVOIR = 64
DEFAULT_RING = 256


def _round(value: Optional[float], digits: int = 9) -> Optional[float]:
    return round(value, digits) if value is not None else None


class _Episode:
    """One fault episode being stitched (mutable while open)."""

    __slots__ = (
        "suo_id", "wave", "fault", "component", "injected_at",
        "first_deviation_at", "detected_at", "observable", "detections",
        "ranks", "rungs", "repaired_at", "repair_mode", "ttr",
    )

    def __init__(
        self,
        suo_id: str,
        wave: Any,
        fault: Optional[str],
        component: Optional[str],
        injected_at: float,
    ) -> None:
        self.suo_id = suo_id
        self.wave = wave
        self.fault = fault
        self.component = component
        self.injected_at = injected_at
        self.first_deviation_at: Optional[float] = None
        self.detected_at: Optional[float] = None
        self.observable: Optional[str] = None
        self.detections = 0
        self.ranks: List[Dict[str, Any]] = []
        self.rungs: List[Dict[str, Any]] = []
        self.repaired_at: Optional[float] = None
        self.repair_mode: Optional[str] = None
        self.ttr: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-friendly record (floats rounded so the digest
        is stable across float-repr differences)."""
        return {
            "suo": self.suo_id,
            "wave": self.wave,
            "fault": self.fault,
            "component": self.component,
            "injected_at": _round(self.injected_at),
            "first_deviation_at": _round(self.first_deviation_at),
            "detected_at": _round(self.detected_at),
            "observable": self.observable,
            "detections": self.detections,
            "ranks": self.ranks,
            "rungs": self.rungs,
            "repaired_at": _round(self.repaired_at),
            "repair_mode": self.repair_mode,
            "ttr": _round(self.ttr),
        }


def episode_digest(record: Dict[str, Any]) -> str:
    """SHA-256 over one canonical episode record."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def span_forest_digest(digests: List[List[Any]]) -> str:
    """Order-invariant digest over ``(suo, wave, digest)`` triples.

    Sorting before hashing is what makes this the sharding witness:
    shards complete episodes in interleaved order, but the triple *set*
    is a placement-invariant fact of the campaign."""
    hasher = hashlib.sha256()
    for suo, wave, digest in sorted(
        (str(s), str(w), str(d)) for s, w, d in digests
    ):
        hasher.update(f"{suo}\t{wave}\t{digest}\n".encode("utf-8"))
    return hasher.hexdigest()


class SpanRecorder:
    """Deterministic episode stitcher over one fleet's bus.

    Subscribe with :meth:`attach_member` per member (``MonitorFleet``
    does this on admission once the recorder is attached); the ``obs.*``
    marker subscription is made at construction.  All state is keyed to
    the ``clock`` (simulated time), never wall-clock.
    """

    def __init__(
        self,
        bus: EventBus,
        clock: Callable[[], float],
        seed: int = 0,
        ring: int = DEFAULT_RING,
        reservoir: int = DEFAULT_RESERVOIR,
    ) -> None:
        if ring <= 0 or reservoir <= 0:
            raise ValueError("ring and reservoir must be positive")
        self._bus = bus
        self._clock = clock
        self.ring = ring
        self.reservoir = reservoir
        self._rng = random.Random(f"spans:{seed}")
        #: suo_id -> open episodes, oldest first (mirrors the recovery
        #: harness's own episode queue, so rungs/repairs match up).
        self._open: Dict[str, List[_Episode]] = {}
        #: Newest ``ring`` completed episodes, full records.
        self.episodes: deque = deque(maxlen=ring)
        #: Seeded uniform sample of ALL completed episodes.
        self._samples: List[Dict[str, Any]] = []
        #: (suo, wave, digest) per completed episode — the witness.
        self.digests: List[List[str]] = []
        self.completed = 0
        self.errors_claimed = 0
        #: Errors on members with no open episode (false alarms, or
        #: residual deviation after a repair) — counted, not dropped.
        self.orphan_errors = 0
        #: Markers that matched no open episode, by kind.
        self.orphan_markers: Dict[str, int] = {}
        self.markers: Dict[str, int] = {}
        self._subscriptions: List[Subscription] = [
            bus.subscribe("obs.*", self._on_marker)
        ]
        self._attached: set = set()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_member(self, suo_id: str) -> None:
        """Subscribe to one member's exact error topic (idempotent).

        Exact topics keep the recorder off the ``suo.*`` hot path: the
        handler runs only when an error is actually published."""
        if suo_id in self._attached:
            return
        self._attached.add(suo_id)
        self._subscriptions.append(
            self._bus.subscribe(
                f"suo.{suo_id}.error",
                lambda topic, report, suo_id=suo_id: self._on_error(
                    suo_id, report
                ),
            )
        )

    def detach(self) -> None:
        """Stop ingesting; stitched state stays queryable."""
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _on_marker(self, topic: str, event: Any) -> None:
        if not isinstance(event, dict):
            return
        kind = event.get("ev")
        if kind not in MARKER_KINDS:
            return
        # topic == "obs.<suo_id>.span"
        suo_id = topic.split(".", 2)[1] if topic.count(".") >= 2 else topic
        self.markers[kind] = self.markers.get(kind, 0) + 1
        now = self._clock()
        if kind == "inject":
            self._open.setdefault(suo_id, []).append(
                _Episode(
                    suo_id,
                    event.get("wave"),
                    event.get("fault"),
                    event.get("component"),
                    now,
                )
            )
            return
        episode = self._match(suo_id, event.get("wave"))
        if episode is None:
            self.orphan_markers[kind] = self.orphan_markers.get(kind, 0) + 1
            return
        if kind == "sfl-rank":
            episode.ranks.append(
                {
                    "at": _round(now),
                    "suspect": event.get("suspect"),
                    "confidence": event.get("confidence"),
                    "true_rank": event.get("true_rank"),
                    "source": event.get("source", "spectra"),
                }
            )
        elif kind == "rung":
            rung: Dict[str, Any] = {
                "at": _round(now),
                "action": event.get("action"),
                "downtime": event.get("downtime"),
            }
            for key in ("mode", "hit"):
                if key in event:
                    rung[key] = event[key]
            episode.rungs.append(rung)
        elif kind == "repair":
            self._close(suo_id, episode, event, now)

    def _match(self, suo_id: str, wave: Any) -> Optional[_Episode]:
        """The oldest open episode the marker belongs to.

        Markers carry the wave of the episode the harness is working
        (its oldest open one); fall back to the oldest open episode when
        the wave is absent — same queue discipline as the harness."""
        queue = self._open.get(suo_id)
        if not queue:
            return None
        if wave is not None:
            for episode in queue:
                if episode.wave == wave:
                    return episode
        return queue[0]

    def _on_error(self, suo_id: str, report: Any) -> None:
        queue = self._open.get(suo_id)
        if not queue:
            self.orphan_errors += 1
            return
        self.errors_claimed += 1
        # First undetected episode claims the detection (oldest first —
        # stacked faults detect in arrival order); later errors are
        # re-detections of the episode still being worked.
        for episode in queue:
            if episode.detected_at is None:
                when = getattr(report, "time", None)
                episode.detected_at = when if when is not None else self._clock()
                episode.observable = getattr(report, "observable", None)
                context = getattr(report, "context", None) or {}
                first = context.get("first_deviation_at")
                episode.first_deviation_at = (
                    first if first is not None else episode.detected_at
                )
                episode.detections = 1
                return
        queue[0].detections += 1

    def _close(
        self, suo_id: str, episode: _Episode, event: Dict[str, Any], now: float
    ) -> None:
        self._open[suo_id].remove(episode)
        episode.repaired_at = now
        episode.repair_mode = event.get("mode")
        ttr = event.get("ttr")
        episode.ttr = float(ttr) if ttr is not None else now - episode.injected_at
        record = episode.as_dict()
        digest = episode_digest(record)
        index = self.completed
        self.completed += 1
        self.episodes.append(record)
        self.digests.append([record["suo"], str(record["wave"]), digest])
        # Algorithm R over the full completed stream (seeded: the same
        # campaign retains the same sample run over run).
        if index < self.reservoir:
            self._samples.append(record)
        else:
            slot = self._rng.randrange(index + 1)
            if slot < self.reservoir:
                self._samples[slot] = record

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def open_episodes(self) -> int:
        return sum(len(queue) for queue in self._open.values())

    def forest_digest(self) -> str:
        """Order-invariant digest over every completed episode."""
        return span_forest_digest(self.digests)

    def sample_episodes(self) -> List[Dict[str, Any]]:
        """The reservoir sample, sorted canonically (suo, wave)."""
        return sorted(
            self._samples, key=lambda r: (str(r["suo"]), str(r["wave"]))
        )

    def mergeable(self) -> Dict[str, Any]:
        """JSON-friendly block a shard worker ships home.

        Counters and the digest triples are exact and shard-invariant;
        the sample list is a bounded best-effort carry (identical to the
        serial run's whenever the campaign fits the reservoir, which the
        library drills do)."""
        return {
            "completed": self.completed,
            "open": self.open_episodes,
            "errors_claimed": self.errors_claimed,
            "orphan_errors": self.orphan_errors,
            "markers": {k: self.markers[k] for k in sorted(self.markers)},
            "digests": sorted(self.digests),
            "forest_digest": self.forest_digest(),
            "samples": self.sample_episodes(),
        }


def merge_span_blocks(
    blocks: List[Dict[str, Any]], reservoir: int = DEFAULT_RESERVOIR
) -> Dict[str, Any]:
    """Fold N per-shard :meth:`SpanRecorder.mergeable` blocks into one.

    Counters sum exactly (each member's episodes complete on exactly one
    shard); digest triples union and re-sort, so the merged
    ``forest_digest`` equals the serial run's; samples concatenate in
    canonical (suo, wave) order and truncate deterministically at
    ``reservoir``."""
    if not blocks:
        raise ValueError("merge_span_blocks needs at least one block")
    markers: Dict[str, int] = {}
    for block in blocks:
        for kind, count in block.get("markers", {}).items():
            markers[kind] = markers.get(kind, 0) + count
    digests = sorted(
        triple for block in blocks for triple in block.get("digests", [])
    )
    samples = sorted(
        (record for block in blocks for record in block.get("samples", [])),
        key=lambda r: (str(r["suo"]), str(r["wave"])),
    )[:reservoir]
    return {
        "completed": sum(block.get("completed", 0) for block in blocks),
        "open": sum(block.get("open", 0) for block in blocks),
        "errors_claimed": sum(
            block.get("errors_claimed", 0) for block in blocks
        ),
        "orphan_errors": sum(
            block.get("orphan_errors", 0) for block in blocks
        ),
        "markers": {k: markers[k] for k in sorted(markers)},
        "digests": digests,
        "forest_digest": span_forest_digest(digests),
        "samples": samples,
    }


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _span_children(record: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The episode's child spans as (name, start, end, args) dicts —
    shared layout between the Chrome and text exporters."""
    spans: List[Dict[str, Any]] = []
    injected = record.get("injected_at") or 0.0
    first = record.get("first_deviation_at")
    detected = record.get("detected_at")
    repaired = record.get("repaired_at")
    if first is not None:
        spans.append(
            {"name": "latent", "start": injected, "end": first, "args": {}}
        )
    if detected is not None:
        spans.append(
            {
                "name": "detect",
                "start": first if first is not None else detected,
                "end": detected,
                "args": {
                    "observable": record.get("observable"),
                    "detections": record.get("detections"),
                },
            }
        )
    for rank in record.get("ranks", []):
        spans.append(
            {
                "name": "sfl-rank",
                "start": rank.get("at"),
                "end": rank.get("at"),
                "args": {
                    "suspect": rank.get("suspect"),
                    "confidence": rank.get("confidence"),
                    "true_rank": rank.get("true_rank"),
                },
            }
        )
    for rung in record.get("rungs", []):
        start = rung.get("at") or 0.0
        spans.append(
            {
                "name": f"rung:{rung.get('action')}",
                "start": start,
                "end": start + (rung.get("downtime") or 0.0),
                "args": {
                    key: rung[key] for key in ("mode", "hit") if key in rung
                },
            }
        )
    if repaired is not None:
        spans.append(
            {
                "name": "repair",
                "start": repaired,
                "end": repaired,
                "args": {"mode": record.get("repair_mode"),
                         "ttr": record.get("ttr")},
            }
        )
    return spans


def chrome_trace(episodes: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Render episode records as Chrome ``trace_event`` JSON.

    Simulated seconds map to trace microseconds; each SUO gets its own
    thread lane (named via metadata events), each episode a complete
    ("X") root span of duration TTR with its causal children nested
    inside, and the instantaneous nodes (ranking, repair) as instant
    ("i") events.  Load the result at ``chrome://tracing``/Perfetto.
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}
    for record in episodes:
        suo = str(record.get("suo"))
        tid = lanes.get(suo)
        if tid is None:
            tid = lanes[suo] = len(lanes) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": suo},
                }
            )
        injected = record.get("injected_at") or 0.0
        repaired = record.get("repaired_at")
        duration = (
            (repaired - injected) if repaired is not None
            else (record.get("ttr") or 0.0)
        )
        events.append(
            {
                "name": (
                    f"episode w{record.get('wave')} "
                    f"{record.get('fault') or '?'}"
                ),
                "cat": "episode",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round(injected * 1e6, 3),
                "dur": round(max(duration, 0.0) * 1e6, 3),
                "args": {
                    "component": record.get("component"),
                    "ttr": record.get("ttr"),
                    "repair_mode": record.get("repair_mode"),
                },
            }
        )
        for span in _span_children(record):
            start = span["start"] or 0.0
            end = span["end"] if span["end"] is not None else start
            if end > start:
                events.append(
                    {
                        "name": span["name"],
                        "cat": "span",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": round(start * 1e6, 3),
                        "dur": round((end - start) * 1e6, 3),
                        "args": span["args"],
                    }
                )
            else:
                events.append(
                    {
                        "name": span["name"],
                        "cat": "span",
                        "ph": "i",
                        "s": "t",
                        "pid": 1,
                        "tid": tid,
                        "ts": round(start * 1e6, 3),
                        "args": span["args"],
                    }
                )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated seconds x 1e6"},
    }


def text_timeline(episodes: List[Dict[str, Any]]) -> str:
    """Render episode records as a plain-text timeline, one indented
    block per episode, events in simulated-time order."""
    lines: List[str] = []
    for record in episodes:
        ttr = record.get("ttr")
        outcome = f"TTR={ttr:.3f}s" if ttr is not None else "(open)"
        lines.append(
            f"{record.get('suo')} wave {record.get('wave')} "
            f"fault={record.get('fault') or '?'} "
            f"component={record.get('component') or '?'} "
            f"{outcome}"
        )
        timeline: List[Any] = [
            (record.get("injected_at") or 0.0, "inject", "")
        ]
        for span in _span_children(record):
            start = span["start"] or 0.0
            detail = " ".join(
                f"{key}={value}" for key, value in span["args"].items()
                if value is not None
            )
            timeline.append((start, span["name"], detail))
        for at, name, detail in sorted(timeline, key=lambda row: row[0]):
            suffix = f"  {detail}" if detail else ""
            lines.append(f"  t={at:12.6f}  {name}{suffix}")
    return "\n".join(lines)
