"""Job engine for the campaign service (PR 10).

A :class:`JobManager` owns a bounded worker pool and a SQLite-backed
:class:`~repro.obs.history.RunHistory` path.  Each submitted job is a
scenario × seed grid; every cell executes through THE orchestration
path — :func:`repro.campaign.core.execute_cell` with a
:class:`~repro.campaign.distributed.DistributedBackend` whose
:class:`ShardExecutor` is the :class:`StreamingExecutor` below — so a
job run over HTTP is checkpointed shard-by-shard exactly like a CLI
campaign, and its merged ``telemetry_digest`` / ``span_digest`` are
byte-identical to a serial :func:`~repro.campaign.core.run_cell` of the
same spec × seed.

Live streaming rides on the segmented-execution seam
(:func:`repro.campaign.backends.execute_plan_segmented`): each shard
runs as N kernel slices, and after every slice the executor emits a
flushed :class:`~repro.runtime.telemetry.FleetTelemetry` summary to the
job's subscribers and checks for cancellation — which is why a
mid-stream ``POST /campaigns/{id}/cancel`` lands between segments
without perturbing anything a finished shard already recorded.

Threading model: every job runs on one pool thread, which opens its own
:class:`RunHistory` connection (SQLite connections are thread-affine).
Status reads open short-lived per-call connections.  Subscriber fan-out
is queue-based with full replay, so a late subscriber sees the whole
record history before going live.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.checkpoint import CampaignCheckpoint
from ..campaign.core import execute_cell
from ..campaign.distributed import DistributedBackend
from ..campaign.backends import ShardResult, execute_plan_segmented
from ..campaign.report import CampaignReport
from ..obs.history import RunHistory
from ..scenarios.library import get_scenario
from ..scenarios.plan import ScenarioPlan
from ..scenarios.spec import ScenarioSpec

__all__ = [
    "Job",
    "JobCancelled",
    "JobManager",
    "StreamingExecutor",
    "SubmissionError",
    "parse_submission",
]

#: Stored stream records per job; beyond this telemetry records are
#: dropped from the replay buffer (live subscribers still get them) so
#: an enormous campaign cannot grow a job's memory without bound.
MAX_REPLAY_RECORDS = 4096

#: Terminal job states.
TERMINAL_STATES = frozenset({"complete", "failed", "cancelled"})


class JobCancelled(RuntimeError):
    """Raised inside a job thread when its cancel flag is set.

    Deliberately NOT a :class:`~repro.campaign.distributed.
    WorkerLostError`: the distributed backend retries lost workers, but
    a cancellation must propagate straight out of ``submit_all``.
    """


class SubmissionError(ValueError):
    """A malformed campaign submission (maps to HTTP 400)."""


def _resolve_scenario(entry: Any) -> ScenarioSpec:
    """A submission scenario: a library name or an inline spec dict."""
    if isinstance(entry, str):
        try:
            return get_scenario(entry)
        except KeyError as exc:
            raise SubmissionError(str(exc.args[0])) from exc
    if isinstance(entry, dict):
        try:
            spec = ScenarioSpec.from_json(entry)
            spec.validate()
            return spec
        except SubmissionError:
            raise
        except Exception as exc:
            raise SubmissionError(f"invalid scenario spec: {exc}") from exc
    raise SubmissionError(
        f"scenario entries must be library names or spec objects,"
        f" got {type(entry).__name__}"
    )


_ALLOWED_KEYS = frozenset({"scenarios", "seeds", "shards", "segments", "campaign_id"})


def parse_submission(
    data: Any,
) -> Tuple[List[Tuple[ScenarioSpec, int]], Dict[str, Any]]:
    """Validate a ``POST /campaigns`` body into (cells, options).

    Strict on purpose — unknown keys are rejected rather than ignored,
    so a typo'd ``"seed"`` cannot silently run the default grid.
    Raises :class:`SubmissionError` (HTTP 400) on anything malformed.
    """
    if not isinstance(data, dict):
        raise SubmissionError("submission body must be a JSON object")
    unknown = set(data) - _ALLOWED_KEYS
    if unknown:
        raise SubmissionError(
            f"unknown submission keys: {sorted(unknown)}"
            f" (allowed: {sorted(_ALLOWED_KEYS)})"
        )
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise SubmissionError(
            "'scenarios' must be a non-empty list of names or spec objects"
        )
    specs = [_resolve_scenario(entry) for entry in scenarios]
    seeds = data.get("seeds", [0])
    if (
        not isinstance(seeds, list)
        or not seeds
        or not all(
            isinstance(seed, int) and not isinstance(seed, bool) for seed in seeds
        )
    ):
        raise SubmissionError("'seeds' must be a non-empty list of integers")
    options: Dict[str, Any] = {}
    for key, floor in (("shards", 1), ("segments", 1)):
        if key in data:
            value = data[key]
            if not isinstance(value, int) or isinstance(value, bool) or value < floor:
                raise SubmissionError(f"'{key}' must be an integer >= {floor}")
            options[key] = value
    if "campaign_id" in data:
        campaign_id = data["campaign_id"]
        if not isinstance(campaign_id, str) or not campaign_id:
            raise SubmissionError("'campaign_id' must be a non-empty string")
        options["campaign_id"] = campaign_id
    cells = [(spec, int(seed)) for spec in specs for seed in seeds]
    return cells, options


# ----------------------------------------------------------------------
class Job:
    """One submitted campaign: cells, live state, and stream fan-out."""

    def __init__(
        self,
        job_id: str,
        cells: List[Tuple[ScenarioSpec, int]],
        campaign_id: str,
        shards: int,
        segments: int,
    ) -> None:
        self.job_id = job_id
        self.cells = cells
        self.campaign_id = campaign_id
        self.shards = shards
        self.segments = segments
        self.state = "queued"
        self.error: Optional[str] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.reports: List[CampaignReport] = []
        self.cancel_event = threading.Event()
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._subscribers: List["queue.Queue[Dict[str, Any]]"] = []

    # -- stream fan-out -------------------------------------------------
    def emit(self, record: Dict[str, Any]) -> None:
        """Append one stream record and fan it out to subscribers."""
        with self._lock:
            if (
                len(self._records) < MAX_REPLAY_RECORDS
                or record.get("type") != "telemetry"
            ):
                self._records.append(record)
            targets = list(self._subscribers)
        for target in targets:
            target.put(record)

    def subscribe(self) -> "queue.Queue[Dict[str, Any]]":
        """A queue pre-loaded with the full replay, then live records.

        Taken under the emit lock so the replay/live handoff cannot
        drop or duplicate a record.
        """
        subscriber: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        with self._lock:
            for record in self._records:
                subscriber.put(record)
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue[Dict[str, Any]]") -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    # -- views ----------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def cell_summaries(self) -> List[Dict[str, Any]]:
        return [
            {
                "scenario": report.scenario,
                "seed": report.seed,
                "telemetry_digest": report.telemetry_digest,
                "span_digest": report.span_digest,
                "members": report.members,
                "dispatched": report.dispatched,
                "detection_rate": report.detection_rate,
                "false_alarm_rate": report.false_alarm_rate,
            }
            for report in self.reports
        ]

    def snapshot(self) -> Dict[str, Any]:
        """The job's own view (checkpoint state is merged in by the
        manager, which owns the store)."""
        with self._lock:
            records = len(self._records)
        done = self.cell_summaries()
        data: Dict[str, Any] = {
            "job_id": self.job_id,
            "campaign_id": self.campaign_id,
            "state": self.state,
            "error": self.error,
            "cells_total": len(self.cells),
            "cells_complete": len(done),
            "cells": [
                {"scenario": spec.name, "seed": seed} for spec, seed in self.cells
            ],
            "completed": done,
            "shards": self.shards,
            "segments": self.segments,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "records": records,
        }
        if len(self.reports) == len(self.cells) and len(self.cells) == 1:
            data["telemetry_digest"] = self.reports[0].telemetry_digest
            data["span_digest"] = self.reports[0].span_digest
        return data


# ----------------------------------------------------------------------
class StreamingExecutor:
    """A :class:`ShardExecutor` that narrates one job's shards.

    ``run_attempt`` drives the plan through
    :func:`execute_plan_segmented`; after every kernel slice it emits a
    flushed telemetry summary for the job's NDJSON stream and raises
    :class:`JobCancelled` if the job was cancelled — the only two
    behaviours layered on top of plain inline execution, neither of
    which can perturb the payload (segmentation is digest-invariant by
    construction).
    """

    name = "service"

    def __init__(self, job: Job, cell_index: int, segments: int) -> None:
        self.job = job
        self.cell_index = cell_index
        self.segments = segments

    def run_attempt(self, plan: ScenarioPlan, attempt: int) -> ShardResult:
        job = self.job
        if job.cancel_event.is_set():
            raise JobCancelled(job.job_id)
        spec, seed = job.cells[self.cell_index]

        def on_segment(compiled: Any, index: int, now: float) -> None:
            record = {
                "type": "telemetry",
                "cell": self.cell_index,
                "scenario": spec.name,
                "seed": seed,
                "shard": plan.shard_id,
                "segment": index,
                "segments": self.segments,
                "sim_time": now,
                "summary": compiled.fleet.telemetry.summary(),
            }
            job.emit(record)
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)

        payload = execute_plan_segmented(plan, self.segments, on_segment=on_segment)
        record = {
            "type": "shard",
            "cell": self.cell_index,
            "scenario": spec.name,
            "seed": seed,
            "shard": plan.shard_id,
            "attempt": attempt,
            "worker": self.name,
        }
        job.emit(record)
        return ShardResult(
            shard_id=plan.shard_id,
            payload=payload,
            attempt=attempt,
            worker=self.name,
        )


# ----------------------------------------------------------------------
class JobManager:
    """Bounded-pool campaign execution over a shared history store."""

    def __init__(
        self,
        db_path: str,
        workers: int = 2,
        segments: int = 8,
        shards: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.db_path = db_path
        self.default_segments = segments
        self.default_shards = shards
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="campaign-job"
        )

    # ------------------------------------------------------------------
    def submit(self, data: Any) -> Job:
        """Validate one submission and queue it on the pool."""
        cells, options = parse_submission(data)
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        job = Job(
            job_id=job_id,
            cells=cells,
            campaign_id=options.get("campaign_id", job_id),
            shards=options.get("shards", self.default_shards),
            segments=options.get("segments", self.default_segments),
        )
        with self._lock:
            self._jobs[job_id] = job
        self._pool.submit(self._run, job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            ordered = sorted(self._jobs.values(), key=lambda job: job.created_at)
        return ordered

    def cancel(self, job_id: str) -> Optional[Job]:
        job = self.get(job_id)
        if job is None:
            return None
        job.cancel_event.set()
        return job

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Job snapshot + durable per-shard checkpoint state.

        The ``checkpoint`` block is exactly
        :meth:`CampaignCheckpoint.status` — the same helper the
        ``repro.campaign status`` CLI renders — read over a fresh
        short-lived connection (handler threads must not share the job
        thread's SQLite handle).
        """
        job = self.get(job_id)
        if job is None:
            return None
        data = job.snapshot()
        with CampaignCheckpoint(self.db_path) as checkpoint:
            data["checkpoint"] = checkpoint.status(job.campaign_id)
        return data

    def shutdown(self, wait: bool = False) -> None:
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.cancel_event.set()
        self._pool.shutdown(wait=wait, cancel_futures=True)

    # ------------------------------------------------------------------
    # job thread
    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        job.started_at = time.time()
        job.state = "running"
        opening = {
            "type": "job",
            "job_id": job.job_id,
            "campaign_id": job.campaign_id,
            "state": "running",
            "cells": len(job.cells),
            "shards": job.shards,
            "segments": job.segments,
        }
        job.emit(opening)
        history = RunHistory(self.db_path)
        try:
            checkpoint = CampaignCheckpoint(history)
            for index, (spec, seed) in enumerate(job.cells):
                if job.cancel_event.is_set():
                    raise JobCancelled(job.job_id)
                backend = DistributedBackend(
                    StreamingExecutor(job, index, job.segments),
                    shards=job.shards,
                    max_attempts=1,
                    parallelism=1,
                )
                report = execute_cell(
                    spec,
                    seed,
                    backend=backend,
                    checkpoint=checkpoint,
                    campaign_id=job.campaign_id,
                )
                job.reports.append(report)
                history.record_campaign(report)
                record = {
                    "type": "cell",
                    "cell": index,
                    "scenario": report.scenario,
                    "seed": report.seed,
                    "telemetry_digest": report.telemetry_digest,
                    "span_digest": report.span_digest,
                    "members": report.members,
                    "dispatched": report.dispatched,
                    "detection_rate": report.detection_rate,
                    "events_per_sec": report.events_per_sec,
                }
                job.emit(record)
            job.state = "complete"
        except JobCancelled:
            job.state = "cancelled"
        except Exception as exc:  # surfaced via status/stream, not lost
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        finally:
            history.close()
            job.finished_at = time.time()
            end: Dict[str, Any] = {
                "type": "end",
                "job_id": job.job_id,
                "campaign_id": job.campaign_id,
                "state": job.state,
                "error": job.error,
                "cells": job.cell_summaries(),
            }
            if job.state == "complete" and len(job.reports) == 1:
                end["telemetry_digest"] = job.reports[0].telemetry_digest
                end["span_digest"] = job.reports[0].span_digest
            job.emit(end)


def encode_record(record: Dict[str, Any]) -> bytes:
    """One NDJSON stream line (sorted keys: byte-stable for tests)."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
