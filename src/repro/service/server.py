"""The campaign service HTTP surface (stdlib only).

``CampaignServer`` is a :class:`ThreadingHTTPServer` over one
:class:`~repro.service.jobs.JobManager`:

* ``POST /campaigns``                — submit a scenario × seed grid (202)
* ``GET  /campaigns``                — all jobs this server knows
* ``GET  /campaigns/{id}``           — job + per-shard checkpoint status
* ``GET  /campaigns/{id}/report``    — full merged CampaignReports (200
  once complete, 409 with the live state before that)
* ``POST /campaigns/{id}/cancel``    — cooperative cancel (lands at the
  next segment boundary)
* ``GET  /campaigns/{id}/stream``    — chunked NDJSON: replayed + live
  telemetry/shard/cell records, heartbeats while idle, one terminal
  ``end`` record carrying both digests
* ``GET  /history``                  — recent finished campaigns from
  the SQLite run-history store
* ``GET  /trend``                    — rolling trend-gate evaluation
  over recorded run_all reports
* ``GET  /healthz``                  — liveness + job counts

Every response body is JSON (the stream is JSON per line).  Handler
threads open their own short-lived :class:`RunHistory` connections;
nothing here shares SQLite handles across threads.
"""

from __future__ import annotations

import json
import queue
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.history import RunHistory
from ..obs.trend import evaluate_trends
from .jobs import JobManager, SubmissionError, encode_record

__all__ = ["CampaignServer", "serve"]

#: Seconds between heartbeat records when a stream has nothing to say.
STREAM_HEARTBEAT_SECONDS = 2.0

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 4 * 1024 * 1024


class CampaignServer(ThreadingHTTPServer):
    """The service: a threading HTTP server owning one JobManager."""

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        db_path: str = "BENCH_history.sqlite",
        workers: int = 2,
        segments: int = 8,
    ) -> None:
        self.manager = JobManager(db_path, workers=workers, segments=segments)
        self.db_path = db_path
        super().__init__((host, port), _CampaignRequestHandler)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def shutdown(self) -> None:  # also stop the pool, not just the listener
        self.manager.shutdown()
        super().shutdown()


class _CampaignRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.1 so chunked transfer encoding is legal on the stream.
    protocol_version = "HTTP/1.1"
    server: CampaignServer

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        # One access-log line per request on stderr; the CI smoke lane
        # captures it as the server-log artifact.
        super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        *,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SubmissionError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SubmissionError("request body must be JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SubmissionError(f"request body is not valid JSON: {exc}")

    def _query(self) -> Dict[str, str]:
        parsed = parse_qs(urlparse(self.path).query)
        return {key: values[-1] for key, values in parsed.items()}

    def _route(self) -> Tuple[str, ...]:
        path = urlparse(self.path).path.strip("/")
        return tuple(part for part in path.split("/") if part)

    # -- dispatch -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        try:
            self._do_get()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._do_post()
        except SubmissionError as exc:
            self._error(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _do_get(self) -> None:
        route = self._route()
        if route == ("healthz",):
            jobs = self.server.manager.jobs()
            self._send_json(
                200,
                {
                    "ok": True,
                    "jobs": len(jobs),
                    "running": sum(1 for job in jobs if job.state == "running"),
                    "db": self.server.db_path,
                },
            )
        elif route == ("campaigns",):
            self._send_json(
                200,
                {
                    "jobs": [job.snapshot() for job in self.server.manager.jobs()],
                },
            )
        elif len(route) == 2 and route[0] == "campaigns":
            status = self.server.manager.status(route[1])
            if status is None:
                self._error(404, f"unknown job {route[1]!r}")
            else:
                self._send_json(200, status)
        elif len(route) == 3 and route[0] == "campaigns":
            job_id, leaf = route[1], route[2]
            job = self.server.manager.get(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
            elif leaf == "report":
                if job.state != "complete":
                    self._send_json(
                        409,
                        {
                            "error": f"job is {job.state}, not complete",
                            "state": job.state,
                        },
                    )
                else:
                    self._send_json(
                        200,
                        {
                            "job_id": job.job_id,
                            "campaign_id": job.campaign_id,
                            "reports": [report.as_dict() for report in job.reports],
                        },
                    )
            elif leaf == "stream":
                self._stream(job)
            else:
                self._error(404, f"unknown resource {leaf!r}")
        elif route == ("history",):
            query = self._query()
            limit = int(query.get("limit", "20"))
            scenario = query.get("scenario")
            with RunHistory(self.server.db_path) as history:
                rows = history.campaigns(scenario=scenario, limit=limit)
            self._send_json(200, {"campaigns": rows})
        elif route == ("trend",):
            self._trend()
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _do_post(self) -> None:
        route = self._route()
        if route == ("campaigns",):
            data = self._read_body()
            try:
                job = self.server.manager.submit(data)
            except SubmissionError:
                raise
            self._send_json(
                202,
                {
                    "job_id": job.job_id,
                    "campaign_id": job.campaign_id,
                    "state": job.state,
                    "cells": len(job.cells),
                    "shards": job.shards,
                    "segments": job.segments,
                },
            )
        elif len(route) == 3 and route[0] == "campaigns" and route[2] == "cancel":
            job = self.server.manager.cancel(route[1])
            if job is None:
                self._error(404, f"unknown job {route[1]!r}")
            else:
                self._send_json(
                    200,
                    {
                        "job_id": job.job_id,
                        "state": job.state,
                        "cancel_requested": True,
                    },
                )
        else:
            self._error(404, f"unknown path {self.path!r}")

    # -- the stream -----------------------------------------------------
    def _stream(self, job: Any) -> None:
        """Chunked NDJSON: full replay, then live records, heartbeats
        while idle, ending with the job's terminal ``end`` record."""
        subscriber = job.subscribe()
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            while True:
                try:
                    record = subscriber.get(timeout=STREAM_HEARTBEAT_SECONDS)
                except queue.Empty:
                    if job.finished:
                        # Terminal record was consumed by an earlier
                        # subscriber generation or emitted before we
                        # subscribed-yet-after-replay; replay covers it,
                        # so an empty queue on a finished job means done.
                        break
                    self._write_chunk(encode_record({"type": "heartbeat"}))
                    continue
                self._write_chunk(encode_record(record))
                if record.get("type") == "end":
                    break
            self._write_chunk(b"")  # terminating 0-length chunk
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            pass  # subscriber disconnected mid-stream
        finally:
            job.unsubscribe(subscriber)

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    # -- trend ----------------------------------------------------------
    def _trend(self) -> None:
        query = self._query()
        window = int(query.get("window", "5"))
        max_regression = float(query.get("max_regression", "0.30"))
        max_drift = float(query.get("max_drift", "0.25"))
        with RunHistory(self.server.db_path) as history:
            reports = history.run_reports(limit=window + 1)
        if len(reports) < 2:
            self._send_json(
                200,
                {
                    "ok": True,
                    "runs": len(reports),
                    "window": window,
                    "failures": [],
                    "note": "insufficient history for a trend (need 2+ runs)",
                },
            )
            return
        current, priors = reports[0], reports[1:]
        failures = evaluate_trends(
            current,
            priors,
            window=window,
            max_regression=max_regression,
            max_drift=max_drift,
        )
        self._send_json(
            200,
            {
                "ok": not failures,
                "runs": len(priors) + 1,
                "window": window,
                "max_regression": max_regression,
                "max_drift": max_drift,
                "failures": failures,
            },
        )


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    db_path: str = "BENCH_history.sqlite",
    workers: int = 2,
    segments: int = 8,
) -> CampaignServer:
    """Construct a ready-to-run server (caller drives serve_forever)."""
    return CampaignServer(
        host=host,
        port=port,
        db_path=db_path,
        workers=workers,
        segments=segments,
    )
