"""repro.service — the campaign-as-a-service HTTP surface (PR 10).

``python -m repro.service`` boots a long-lived stdlib-only HTTP/JSON
server that accepts scenario × seed campaign submissions, executes them
through THE :func:`~repro.campaign.core.execute_cell` orchestration
path on a bounded worker pool (checkpointed shard-by-shard into the
run-history store), and streams live
:class:`~repro.runtime.telemetry.FleetTelemetry` snapshots to
subscribers over chunked NDJSON while shards run.  Determinism contract
unchanged: a campaign submitted over HTTP produces ``telemetry_digest``
and ``span_digest`` byte-identical to a serial
:func:`~repro.campaign.core.run_cell` of the same spec × seed.

See docs/SERVICE.md for the API reference and a curl walkthrough.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    Job,
    JobCancelled,
    JobManager,
    StreamingExecutor,
    SubmissionError,
    parse_submission,
)
from .server import CampaignServer, serve

__all__ = [
    "CampaignServer",
    "Job",
    "JobCancelled",
    "JobManager",
    "ServiceClient",
    "ServiceError",
    "StreamingExecutor",
    "SubmissionError",
    "parse_submission",
    "serve",
]
