"""Typed stdlib client for the campaign service.

One :class:`ServiceClient` per server address; every call opens a fresh
:class:`http.client.HTTPConnection` (the service is same-host /
CI-local, so connection reuse buys nothing and per-call connections
keep the client trivially thread-safe).  Non-2xx responses raise
:class:`ServiceError` carrying the decoded JSON error payload.

    client = ServiceClient("127.0.0.1", 8750)
    job = client.submit(scenarios=["recovery-ladder-drill"], seeds=[7])
    for record in client.stream(job["job_id"]):
        ...                       # telemetry / shard / cell / end
    report = client.report(job["job_id"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Union
from urllib.parse import urlencode

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"service returned HTTP {status}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Minimal typed wrapper over the service's JSON endpoints."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8750,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Any:
        if query:
            path = f"{path}?{urlencode(query)}"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            data = json.loads(raw) if raw else None
            if response.status >= 400:
                raise ServiceError(response.status, data)
            return data
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        scenarios: List[Union[str, Dict[str, Any]]],
        seeds: Optional[List[int]] = None,
        shards: Optional[int] = None,
        segments: Optional[int] = None,
        campaign_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"scenarios": scenarios}
        if seeds is not None:
            body["seeds"] = seeds
        if shards is not None:
            body["shards"] = shards
        if segments is not None:
            body["segments"] = segments
        if campaign_id is not None:
            body["campaign_id"] = campaign_id
        return self._request("POST", "/campaigns", body=body)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/campaigns")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{job_id}")

    def report(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{job_id}/report")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/campaigns/{job_id}/cancel")

    def history(
        self, limit: int = 20, scenario: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        query: Dict[str, Any] = {"limit": limit}
        if scenario is not None:
            query["scenario"] = scenario
        return self._request("GET", "/history", query=query)["campaigns"]

    def trend(
        self,
        window: int = 5,
        max_regression: float = 0.30,
        max_drift: float = 0.25,
    ) -> Dict[str, Any]:
        query = {
            "window": window,
            "max_regression": max_regression,
            "max_drift": max_drift,
        }
        return self._request("GET", "/trend", query=query)

    # -- streaming ------------------------------------------------------
    def stream(self, job_id: str, heartbeats: bool = False) -> Iterator[Dict[str, Any]]:
        """Yield parsed NDJSON records until the terminal ``end``.

        ``http.client`` decodes the chunked transfer encoding
        transparently, so each iteration is one ``readline`` on the
        response.  Heartbeat records are filtered out unless asked for.
        The underlying connection stays open for the stream's lifetime
        (abandoning the iterator closes it).
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/campaigns/{job_id}/stream")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(
                    response.status, json.loads(response.read() or b"{}")
                )
            while True:
                line = response.readline()
                if not line:
                    break
                record = json.loads(line)
                if record.get("type") == "heartbeat" and not heartbeats:
                    continue
                yield record
                if record.get("type") == "end":
                    break
        finally:
            conn.close()

    # -- conveniences ---------------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.25
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("complete", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def run(
        self,
        scenarios: List[Union[str, Dict[str, Any]]],
        seeds: Optional[List[int]] = None,
        timeout: float = 120.0,
        **options: Any,
    ) -> Dict[str, Any]:
        """Submit, wait, and return the full report in one call."""
        job = self.submit(scenarios, seeds=seeds, **options)
        self.wait(job["job_id"], timeout=timeout)
        return self.report(job["job_id"])
