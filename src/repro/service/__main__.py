"""``python -m repro.service`` — boot the campaign service.

    python -m repro.service --port 8750 --db BENCH_history.sqlite

``--port 0`` binds an ephemeral port; ``--port-file`` writes the bound
port to a file once listening, which is how the CI smoke lane (and any
other supervisor) discovers the address race-free.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .server import CampaignServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="long-lived HTTP/JSON campaign service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8750,
        help="TCP port (0 = ephemeral; see --port-file)",
    )
    parser.add_argument(
        "--db",
        default="BENCH_history.sqlite",
        help="run-history SQLite store (campaign checkpoints + /history)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="bounded job pool size (concurrent campaigns)",
    )
    parser.add_argument(
        "--segments",
        type=int,
        default=8,
        help="default kernel slices per shard (stream granularity)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    server = CampaignServer(
        host=args.host,
        port=args.port,
        db_path=args.db,
        workers=args.workers,
        segments=args.segments,
    )
    host, port = server.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    print(
        f"campaign service listening on http://{host}:{port} "
        f"(db={args.db}, workers={args.workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
