"""Runtime subsystem: the event bus and the multi-SUO fleet engine.

This package is the scale layer the ROADMAP's north star asks for:

* :mod:`repro.runtime.bus` — :class:`EventBus`, the one publish/subscribe
  plane that the kernel, trace, probes, and awareness observers all ride;
* :mod:`repro.runtime.registry` — :class:`ServiceRegistry`, typed
  replacement for the old ``kernel.registry`` dict;
* :mod:`repro.runtime.fleet` — :class:`MonitorFleet` running hundreds
  of monitored SUOs on one kernel with deterministic per-SUO random
  streams (plus the deprecated :class:`ExperimentRunner` shim; new
  campaigns go through :mod:`repro.campaign`);
* :mod:`repro.runtime.telemetry` — :class:`FleetTelemetry` and its
  bounded-memory aggregators (counters, windowed rates, reservoir
  histograms), the streaming alternative to retaining the merged fleet
  trace at thousand-SUO scale.

``fleet`` is imported lazily (PEP 562): it depends on the SUO packages,
which themselves import the kernel — which imports this package for the
bus — so eager import would cycle.
"""

from __future__ import annotations

from .bus import EventBus, Subscription
from .registry import ServiceRegistry, TOPIC_PROVIDE
from .telemetry import (
    CounterSet,
    FleetTelemetry,
    RecoveryStats,
    ReservoirHistogram,
    SuoTally,
    WindowedRate,
)

__all__ = [
    "CounterSet",
    "RecoveryStats",
    "EventBus",
    "ExperimentRunner",
    "FleetMember",
    "FleetReport",
    "FleetTelemetry",
    "MonitorFleet",
    "ReservoirHistogram",
    "ServiceRegistry",
    "Subscription",
    "SuoTally",
    "TOPIC_PROVIDE",
    "WindowedRate",
    "build_fleet_report",
]

_FLEET_NAMES = {
    "MonitorFleet",
    "ExperimentRunner",
    "FleetMember",
    "FleetReport",
    "build_fleet_report",
}


def __getattr__(name: str):
    if name in _FLEET_NAMES:
        from . import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
