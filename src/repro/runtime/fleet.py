"""Multi-SUO fleet engine: many monitored devices, one kernel, one bus.

The paper's framework (Fig. 1/2) watches a single system under
observation.  The ROADMAP's north star is a production-scale service
monitoring *populations* of devices, so this module multiplexes N
independent SUOs — TVs, media players, printers — with their awareness
monitors onto one :class:`~repro.sim.kernel.Kernel` and one
:class:`~repro.runtime.bus.EventBus`:

* every SUO publishes on its own ``suo.<suo_id>.*`` topic namespace, so
  monitors stay isolated while sharing the transport;
* every member draws from its *own* :class:`RandomStreams` whose master
  seed is derived from ``(fleet_seed, suo_id)`` — adding or reordering
  members never perturbs the others, and the same fleet seed reproduces
  the identical fleet trace byte for byte;
* a wildcard ``suo.*`` subscription records the merged fleet trace, whose
  :meth:`MonitorFleet.trace_digest` is the determinism witness.

:class:`ExperimentRunner` drives campaigns over a fleet: seeded random
users on every device, fault injection into a deterministic subset, and a
:class:`FleetReport` with detection and throughput numbers — the repo's
first high-volume workload (hundreds of devices per run).
"""

from __future__ import annotations

import hashlib
import time as wallclock
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..awareness.monitor import (
    AwarenessMonitor,
    make_player_monitor,
    make_tv_monitor,
)
from ..printer.engine import Printer
from ..printer.model import make_printer_monitor
from ..sim.kernel import Kernel
from ..sim.random import RandomStreams
from ..sim.trace import Trace
from ..tv.mediaplayer import MediaPlayer, MediaSource
from ..tv.remote import RandomUser
from ..tv.tvset import TVSet
from .telemetry import FleetTelemetry, SuoTally


def derive_member_seed(fleet_seed: int, suo_id: str) -> int:
    """Stable per-member master seed; independent of creation order."""
    digest = hashlib.sha256(f"fleet:{fleet_seed}:{suo_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FleetMember:
    """One SUO plus its monitor, identity, and campaign bookkeeping."""

    suo_id: str
    kind: str
    suo: Any
    monitor: Optional[AwarenessMonitor]
    seed: int
    driver: Any = None
    faulty: bool = False
    #: The member's ledger inside the fleet's telemetry hub (set on
    #: admission) — one counter state, shared, instead of a second copy
    #: maintained on the recording hot path.
    tally: Optional[SuoTally] = None

    @property
    def inputs(self) -> int:
        return self.tally.inputs if self.tally is not None else 0

    @property
    def outputs(self) -> int:
        return self.tally.outputs if self.tally is not None else 0

    @property
    def error_count(self) -> int:
        return len(self.monitor.errors) if self.monitor is not None else 0


class MonitorFleet:
    """N monitored SUOs multiplexed on one kernel and one event bus.

    With ``retain_trace=True`` (the default) every ``suo.*`` event lands
    in the merged :attr:`trace`, queryable after the run.  At thousand-SUO
    scale that record dominates memory, so ``retain_trace=False`` switches
    to streaming mode: the deterministic :meth:`trace_digest` is still
    computed (the SHA-256 runs incrementally over the same byte lines),
    but no records are retained — :attr:`telemetry` then carries the
    bounded-memory aggregate view.
    """

    def __init__(
        self,
        seed: int = 0,
        kernel: Optional[Kernel] = None,
        retain_trace: bool = True,
        telemetry_window: float = 10.0,
        telemetry_reservoir: int = 512,
        stream_seed: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.kernel = kernel or Kernel()
        self.bus = self.kernel.bus
        #: ``seed`` keys *member* behaviour (per-member streams derive
        #: from ``(seed, suo_id)``); ``stream_seed`` keys the fleet's own
        #: internal streams (fault selection, telemetry reservoir).  They
        #: coincide by default; a shard worker passes the campaign seed
        #: as ``seed`` — so members behave exactly as in the serial run —
        #: and its ``(seed, shard_id)``-derived seed as ``stream_seed``.
        self.stream_seed = seed if stream_seed is None else stream_seed
        self.streams = RandomStreams(derive_member_seed(self.stream_seed, "<fleet>"))
        self.members: Dict[str, FleetMember] = {}
        self.retain_trace = retain_trace
        #: Merged, time-stamped record of every SUO input/output/stimulus
        #: (left empty in streaming mode).
        self.trace = Trace(
            clock=lambda: self.kernel.now, bus=self.bus, name="fleet"
        )
        #: Incremental determinism witness; fed the same bytes that
        #: :meth:`trace_digest` used to hash post-hoc, so retained and
        #: streaming mode produce the identical digest.
        self._digest = hashlib.sha256()
        self._record_count = 0
        #: topic -> (suo_id, kind, digest-line middle), see :meth:`_record`.
        self._topic_parts: Dict[str, Any] = {}
        self.bus.subscribe("suo.*", self._record)
        #: Optional :class:`~repro.obs.spans.SpanRecorder` — attached
        #: via :meth:`attach_span_recorder`, never constructed here:
        #: span recording is opt-in (the paper's overhead budget) and
        #: the fleet must not depend on the obs layer above it.
        self.span_recorder: Optional[Any] = None
        #: Bounded-memory streaming aggregators over the same namespace.
        self.telemetry = FleetTelemetry(
            self.bus,
            clock=lambda: self.kernel.now,
            rng=self.streams.stream("telemetry"),
            window=telemetry_window,
            reservoir=telemetry_reservoir,
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_tv(
        self,
        suo_id: Optional[str] = None,
        monitor: bool = True,
        config: Any = None,
        channel_delay: float = 0.05,
        channel_jitter: float = 0.02,
    ) -> FleetMember:
        """Add one TV (and, by default, its awareness monitor)."""
        suo_id = suo_id or f"tv-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        tv = TVSet(kernel=self.kernel, seed=member_seed, suo_id=suo_id)
        mon = None
        if monitor:
            mon = make_tv_monitor(
                tv,
                config=config,
                channel_delay=channel_delay,
                channel_jitter=channel_jitter,
                name=f"{suo_id}.awareness",
            )
        return self._admit(FleetMember(suo_id, "tv", tv, mon, member_seed))

    def add_tvs(self, count: int, **kwargs: Any) -> List[FleetMember]:
        return [self.add_tv(**kwargs) for _ in range(count)]

    def add_player(
        self,
        suo_id: Optional[str] = None,
        monitor: bool = True,
        packet_count: int = 500,
        corrupt_indices: Optional[List[int]] = None,
    ) -> FleetMember:
        """Add one media player SUO."""
        suo_id = suo_id or f"player-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        source = MediaSource(
            packet_count=packet_count, corrupt_indices=corrupt_indices
        )
        player = MediaPlayer(self.kernel, source, suo_id=suo_id)
        mon = None
        if monitor:
            mon = make_player_monitor(player, name=f"{suo_id}.awareness")
        return self._admit(FleetMember(suo_id, "player", player, mon, member_seed))

    def add_printer(
        self,
        suo_id: Optional[str] = None,
        monitor: bool = True,
        config: Any = None,
        channel_delay: float = 0.05,
        channel_jitter: float = 0.02,
    ) -> FleetMember:
        """Add one printer SUO (and, by default, its awareness monitor).

        Until PR 4 printers joined fleets unmonitored, which pinned the
        printer scenarios' detection rates at a structural zero; the
        queue-depth and page-rate observables now give the monitor
        something a silent jam actually moves.
        """
        suo_id = suo_id or f"printer-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        printer = Printer(kernel=self.kernel, suo_id=suo_id)
        mon = None
        if monitor:
            mon = make_printer_monitor(
                printer,
                config=config,
                channel_delay=channel_delay,
                channel_jitter=channel_jitter,
                name=f"{suo_id}.awareness",
            )
        return self._admit(FleetMember(suo_id, "printer", printer, mon, member_seed))

    def _admit(self, member: FleetMember) -> FleetMember:
        if member.suo_id in self.members:
            raise ValueError(f"duplicate suo_id {member.suo_id!r}")
        self.members[member.suo_id] = member
        member.tally = self.telemetry.tally(member.suo_id)
        monitor = member.monitor
        if monitor is not None:
            # Errors join the suo.<id>.* namespace so the trace, the
            # telemetry tallies, and any future subscriber see them the
            # same way they see inputs and outputs.
            publish = self.bus.publisher(f"suo.{member.suo_id}.error")
            monitor.controller.subscribe_errors(
                lambda report, _publish=publish: _publish(report)
            )
            # Sample process-boundary delivery latency into the bounded
            # reservoir (delivery time minus send time, simulated units).
            for channel in (monitor.input_channel, monitor.output_channel):
                channel.connect(
                    lambda message: self.telemetry.observe_latency(
                        self.kernel.now - message.sent_at
                    )
                )
        if self.span_recorder is not None:
            self.span_recorder.attach_member(member.suo_id)
        return member

    def attach_span_recorder(self, recorder: Any) -> None:
        """Wire a :class:`~repro.obs.spans.SpanRecorder` into the fleet:
        every current member's exact error topic is subscribed now, and
        future admissions attach themselves.  The recorder must have
        been built on this fleet's bus."""
        self.span_recorder = recorder
        for suo_id in self.members:
            recorder.attach_member(suo_id)

    # ------------------------------------------------------------------
    # fleet trace
    # ------------------------------------------------------------------
    def _record(self, topic: str, event: Any) -> None:
        # topic == "suo.<suo_id>.<kind>"; per-member counting lives in
        # the telemetry hub's own suo.* subscription (member.tally).
        # Topics recur for the life of the fleet, so the split (and the
        # "<suo_id>\t<kind>\t" digest-line fragment it feeds) is cached
        # per topic rather than recomputed per event.
        cached = self._topic_parts.get(topic)
        if cached is None:
            _, suo_id, kind = topic.split(".", 2)
            cached = self._topic_parts[topic] = (suo_id, kind, f"\t{suo_id}\t{kind}\t")
        suo_id, kind, middle = cached
        line = f"{self.kernel.now:.9f}{middle}{event!r}\n"
        self._digest.update(line.encode("utf-8"))
        self._record_count += 1
        if self.retain_trace:
            self.trace.emit(suo_id, kind, event)

    def trace_digest(self) -> str:
        """SHA-256 over the merged fleet event stream (determinism
        witness).  Computed incrementally, so it is available in both
        retained and streaming (``retain_trace=False``) mode."""
        return self._digest.hexdigest()

    def record_count(self) -> int:
        """Events recorded to the merged stream (retained or not)."""
        return self._record_count

    # ------------------------------------------------------------------
    # drivers and faults
    # ------------------------------------------------------------------
    def start_random_users(
        self,
        mean_gap: float = 4.0,
        keys: Optional[List[str]] = None,
        members: Optional[List[FleetMember]] = None,
    ) -> int:
        """Attach a seeded random user to TV members; returns count.

        By default every TV gets one; pass ``members`` to drive only a
        subset (scenario user profiles assign different gap/key mixes to
        different groups this way).
        """
        started = 0
        pool = members if members is not None else list(self.members.values())
        for member in pool:
            if member.kind != "tv" or member.driver is not None:
                continue
            member.driver = RandomUser(
                member.suo.remote, member.suo.streams,
                mean_gap=mean_gap, keys=keys,
            )
            member.driver.start()
            started += 1
        return started

    def power_on_tvs(self, stagger: float = 0.1) -> None:
        """Deterministically power every TV, staggered to avoid one
        giant same-timestamp batch at t=0."""
        for index, member in enumerate(self.members.values()):
            if member.kind != "tv":
                continue
            member.suo.remote.schedule_press(index * stagger, "power")

    def inject_faults(
        self,
        fraction: float = 0.25,
        fault: str = "volume_overshoot",
        at: float = 0.0,
        stream: str = "faults",
    ) -> List[FleetMember]:
        """Activate ``fault`` on a seeded random subset of TV members.

        Selection draws from the fleet-level stream, so the same fleet
        seed always afflicts the same devices.
        """
        rng = self.streams.stream(stream)
        targets: List[FleetMember] = []
        for member in self.members.values():
            if member.kind != "tv":
                continue
            if rng.random() < fraction:
                targets.append(member)
                member.faulty = True
                flags = member.suo.control.fault_flags

                def activate(flags=flags, name=fault) -> None:
                    flags[name] = True

                self.kernel.schedule(
                    max(0.0, at - self.kernel.now),
                    activate,
                    name=f"fault:{member.suo_id}",
                )
        return targets

    # ------------------------------------------------------------------
    def run(self, duration: float) -> int:
        """Advance the shared kernel; returns events dispatched."""
        dispatched = self.kernel.run(until=self.kernel.now + duration)
        # Telemetry defers same-(topic, timestamp) bursts; settle them so
        # member tallies and summaries read exact immediately after a run.
        self.telemetry.flush()
        return dispatched

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class FleetReport:
    """Outcome of one campaign over a :class:`MonitorFleet`."""

    members: int
    duration: float
    dispatched: int
    wall_seconds: float
    events_per_sec: float
    errors_by_suo: Dict[str, int]
    faulty: List[str]
    detected: List[str]
    false_alarms: List[str]
    trace_digest: str
    trace_records: int
    telemetry_summary: Dict[str, Any] = field(default_factory=dict)
    telemetry_digest: str = ""
    retained_trace: bool = True
    #: Monitored members that were NOT fault-injected — the population
    #: that could have false-alarmed (None: derive from members/faulty).
    monitored_clean: Optional[int] = None

    @property
    def detection_rate(self) -> float:
        """Detected / injected.  A zero-fault campaign vacuously detects
        everything, so the guard returns 1.0 rather than dividing by the
        empty fault set."""
        if not self.faulty:
            return 1.0
        return len(self.detected) / len(self.faulty)

    @property
    def false_alarm_rate(self) -> float:
        """False alarms / monitored fault-free members (0.0 when no such
        member exists — nobody *could* have false-alarmed).  Unmonitored
        members (``monitor=False`` admissions) are excluded from the
        denominator, mirroring the detection-rate accounting."""
        if self.monitored_clean is not None:
            clean = self.monitored_clean
        else:
            clean = self.members - len(self.faulty)
        if clean <= 0:
            return 0.0
        return len(self.false_alarms) / clean


def build_fleet_report(
    fleet: MonitorFleet,
    duration: float,
    dispatched: int,
    wall_seconds: float,
    faulty: List["FleetMember"],
) -> FleetReport:
    """Fold a finished campaign segment into a :class:`FleetReport`.

    Shared by :class:`ExperimentRunner` and the scenario engine
    (:mod:`repro.scenarios`), so every campaign — hand-coded or
    declarative — reports through one schema.
    """
    errors = {m.suo_id: m.error_count for m in fleet.members.values()}
    detected = [m.suo_id for m in faulty if m.error_count > 0]
    false_alarms = [
        m.suo_id
        for m in fleet.members.values()
        if not m.faulty and m.error_count > 0
    ]
    return FleetReport(
        members=len(fleet),
        duration=duration,
        dispatched=dispatched,
        wall_seconds=wall_seconds,
        events_per_sec=dispatched / wall_seconds if wall_seconds > 0 else 0.0,
        errors_by_suo=errors,
        faulty=[m.suo_id for m in faulty],
        detected=detected,
        false_alarms=false_alarms,
        trace_digest=fleet.trace_digest(),
        trace_records=fleet.record_count(),
        telemetry_summary=fleet.telemetry.summary(),
        telemetry_digest=fleet.telemetry.digest(),
        retained_trace=fleet.retain_trace,
        monitored_clean=sum(
            1
            for m in fleet.members.values()
            if m.monitor is not None and not m.faulty
        ),
    )


#: Keys of deprecation warnings already emitted — the shims are often
#: constructed in sweep loops, and one warning per process is signal
#: while hundreds are noise.  Tests discard a key to assert on it.
_DEPRECATION_WARNED: set = set()


def warn_deprecated_once(key: str, message: str) -> None:
    """Emit ``message`` as a DeprecationWarning once per process per key."""
    if key in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


class ExperimentRunner:
    """Run a fault-injection campaign across a :class:`MonitorFleet`.

    .. deprecated:: PR 3
        :class:`repro.campaign.Campaign` is the unified campaign entry
        point (declarative specs, pluggable serial/sharded execution
        backends).  ``ExperimentRunner`` remains for hand-built fleets
        the declarative layer cannot express, but new code should write
        a :class:`~repro.scenarios.ScenarioSpec` and run it through a
        ``Campaign``.

    ``run()`` may be called repeatedly: the first call performs the
    campaign setup (power-on, random users, fault injection) and every
    call advances the same campaign by ``duration`` — setup is never
    re-applied, so a second ``run()`` extends the session instead of
    toggling every TV back into standby or double-attaching drivers.
    Every report covers the campaign *from its start*: duration,
    dispatched, and wall time accumulate across segments, matching the
    cumulative error counts, trace records, and telemetry it carries.
    """

    def __init__(
        self,
        fleet: MonitorFleet,
        duration: float = 120.0,
        mean_gap: float = 4.0,
        fault: str = "volume_overshoot",
        fault_fraction: float = 0.0,
        fault_time: Optional[float] = None,
        keys: Optional[List[str]] = None,
    ) -> None:
        warn_deprecated_once(
            "ExperimentRunner",
            "ExperimentRunner is deprecated: build a ScenarioSpec and run "
            "it through repro.campaign.Campaign (serial or sharded)."
        )
        self.fleet = fleet
        self.duration = duration
        self.mean_gap = mean_gap
        self.fault = fault
        self.fault_fraction = fault_fraction
        self.fault_time = fault_time if fault_time is not None else duration / 3.0
        self.keys = keys
        self._faulty: List[FleetMember] = []
        self._started = False
        self._elapsed = 0.0
        self._dispatched = 0
        self._wall = 0.0

    def run(self) -> FleetReport:
        fleet = self.fleet
        if not self._started:
            self._started = True
            fleet.power_on_tvs()
            fleet.start_random_users(mean_gap=self.mean_gap, keys=self.keys)
            if self.fault_fraction > 0.0:
                self._faulty = fleet.inject_faults(
                    fraction=self.fault_fraction,
                    fault=self.fault,
                    at=fleet.kernel.now + self.fault_time,
                )
        start = wallclock.perf_counter()
        dispatched = fleet.run(self.duration)
        self._wall += wallclock.perf_counter() - start
        self._elapsed += self.duration
        self._dispatched += dispatched
        return build_fleet_report(
            fleet, self._elapsed, self._dispatched, self._wall, self._faulty
        )
