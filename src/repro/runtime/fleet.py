"""Multi-SUO fleet engine: many monitored devices, one kernel, one bus.

The paper's framework (Fig. 1/2) watches a single system under
observation.  The ROADMAP's north star is a production-scale service
monitoring *populations* of devices, so this module multiplexes N
independent SUOs — TVs, media players, printers — with their awareness
monitors onto one :class:`~repro.sim.kernel.Kernel` and one
:class:`~repro.runtime.bus.EventBus`:

* every SUO publishes on its own ``suo.<suo_id>.*`` topic namespace, so
  monitors stay isolated while sharing the transport;
* every member draws from its *own* :class:`RandomStreams` whose master
  seed is derived from ``(fleet_seed, suo_id)`` — adding or reordering
  members never perturbs the others, and the same fleet seed reproduces
  the identical fleet trace byte for byte;
* a wildcard ``suo.*`` subscription records the merged fleet trace, whose
  :meth:`MonitorFleet.trace_digest` is the determinism witness.

:class:`ExperimentRunner` drives campaigns over a fleet: seeded random
users on every device, fault injection into a deterministic subset, and a
:class:`FleetReport` with detection and throughput numbers — the repo's
first high-volume workload (hundreds of devices per run).
"""

from __future__ import annotations

import hashlib
import time as wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..awareness.monitor import (
    AwarenessMonitor,
    make_player_monitor,
    make_tv_monitor,
)
from ..printer.engine import Printer
from ..sim.kernel import Kernel
from ..sim.random import RandomStreams
from ..sim.trace import Trace
from ..tv.mediaplayer import MediaPlayer, MediaSource
from ..tv.remote import RandomUser
from ..tv.tvset import TVSet


def derive_member_seed(fleet_seed: int, suo_id: str) -> int:
    """Stable per-member master seed; independent of creation order."""
    digest = hashlib.sha256(f"fleet:{fleet_seed}:{suo_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FleetMember:
    """One SUO plus its monitor, identity, and campaign bookkeeping."""

    suo_id: str
    kind: str
    suo: Any
    monitor: Optional[AwarenessMonitor]
    seed: int
    inputs: int = 0
    outputs: int = 0
    driver: Any = None
    faulty: bool = False

    @property
    def error_count(self) -> int:
        return len(self.monitor.errors) if self.monitor is not None else 0


class MonitorFleet:
    """N monitored SUOs multiplexed on one kernel and one event bus."""

    def __init__(self, seed: int = 0, kernel: Optional[Kernel] = None) -> None:
        self.seed = seed
        self.kernel = kernel or Kernel()
        self.bus = self.kernel.bus
        self.streams = RandomStreams(derive_member_seed(seed, "<fleet>"))
        self.members: Dict[str, FleetMember] = {}
        #: Merged, time-stamped record of every SUO input/output/stimulus.
        self.trace = Trace(
            clock=lambda: self.kernel.now, bus=self.bus, name="fleet"
        )
        self.bus.subscribe("suo.*", self._record)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_tv(
        self,
        suo_id: Optional[str] = None,
        monitor: bool = True,
        config: Any = None,
        channel_delay: float = 0.05,
        channel_jitter: float = 0.02,
    ) -> FleetMember:
        """Add one TV (and, by default, its awareness monitor)."""
        suo_id = suo_id or f"tv-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        tv = TVSet(kernel=self.kernel, seed=member_seed, suo_id=suo_id)
        mon = None
        if monitor:
            mon = make_tv_monitor(
                tv,
                config=config,
                channel_delay=channel_delay,
                channel_jitter=channel_jitter,
                name=f"{suo_id}.awareness",
            )
        return self._admit(FleetMember(suo_id, "tv", tv, mon, member_seed))

    def add_tvs(self, count: int, **kwargs: Any) -> List[FleetMember]:
        return [self.add_tv(**kwargs) for _ in range(count)]

    def add_player(
        self,
        suo_id: Optional[str] = None,
        monitor: bool = True,
        packet_count: int = 500,
        corrupt_indices: Optional[List[int]] = None,
    ) -> FleetMember:
        """Add one media player SUO."""
        suo_id = suo_id or f"player-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        source = MediaSource(
            packet_count=packet_count, corrupt_indices=corrupt_indices
        )
        player = MediaPlayer(self.kernel, source, suo_id=suo_id)
        mon = None
        if monitor:
            mon = make_player_monitor(player, name=f"{suo_id}.awareness")
        return self._admit(FleetMember(suo_id, "player", player, mon, member_seed))

    def add_printer(self, suo_id: Optional[str] = None) -> FleetMember:
        """Add one printer SUO (hardware-style monitors attach separately)."""
        suo_id = suo_id or f"printer-{len(self.members)}"
        member_seed = derive_member_seed(self.seed, suo_id)
        printer = Printer(kernel=self.kernel, suo_id=suo_id)
        return self._admit(FleetMember(suo_id, "printer", printer, None, member_seed))

    def _admit(self, member: FleetMember) -> FleetMember:
        if member.suo_id in self.members:
            raise ValueError(f"duplicate suo_id {member.suo_id!r}")
        self.members[member.suo_id] = member
        return member

    # ------------------------------------------------------------------
    # fleet trace
    # ------------------------------------------------------------------
    def _record(self, topic: str, event: Any) -> None:
        # topic == "suo.<suo_id>.<kind>"
        _, suo_id, kind = topic.split(".", 2)
        member = self.members.get(suo_id)
        if member is not None:
            if kind == "output":
                member.outputs += 1
            elif kind == "input":
                member.inputs += 1
        self.trace.emit(suo_id, kind, event)

    def trace_digest(self) -> str:
        """SHA-256 over the merged fleet trace (determinism witness)."""
        digest = hashlib.sha256()
        for record in self.trace.records:
            line = f"{record.time:.9f}\t{record.source}\t{record.kind}\t{record.value!r}\n"
            digest.update(line.encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # drivers and faults
    # ------------------------------------------------------------------
    def start_random_users(
        self,
        mean_gap: float = 4.0,
        keys: Optional[List[str]] = None,
    ) -> int:
        """Attach a seeded random user to every TV member; returns count."""
        started = 0
        for member in self.members.values():
            if member.kind != "tv" or member.driver is not None:
                continue
            member.driver = RandomUser(
                member.suo.remote, member.suo.streams,
                mean_gap=mean_gap, keys=keys,
            )
            member.driver.start()
            started += 1
        return started

    def power_on_tvs(self, stagger: float = 0.1) -> None:
        """Deterministically power every TV, staggered to avoid one
        giant same-timestamp batch at t=0."""
        for index, member in enumerate(self.members.values()):
            if member.kind != "tv":
                continue
            member.suo.remote.schedule_press(index * stagger, "power")

    def inject_faults(
        self,
        fraction: float = 0.25,
        fault: str = "volume_overshoot",
        at: float = 0.0,
        stream: str = "faults",
    ) -> List[FleetMember]:
        """Activate ``fault`` on a seeded random subset of TV members.

        Selection draws from the fleet-level stream, so the same fleet
        seed always afflicts the same devices.
        """
        rng = self.streams.stream(stream)
        targets: List[FleetMember] = []
        for member in self.members.values():
            if member.kind != "tv":
                continue
            if rng.random() < fraction:
                targets.append(member)
                member.faulty = True
                flags = member.suo.control.fault_flags

                def activate(flags=flags, name=fault) -> None:
                    flags[name] = True

                self.kernel.schedule(
                    max(0.0, at - self.kernel.now),
                    activate,
                    name=f"fault:{member.suo_id}",
                )
        return targets

    # ------------------------------------------------------------------
    def run(self, duration: float) -> int:
        """Advance the shared kernel; returns events dispatched."""
        return self.kernel.run(until=self.kernel.now + duration)

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class FleetReport:
    """Outcome of one :class:`ExperimentRunner` campaign."""

    members: int
    duration: float
    dispatched: int
    wall_seconds: float
    events_per_sec: float
    errors_by_suo: Dict[str, int]
    faulty: List[str]
    detected: List[str]
    false_alarms: List[str]
    trace_digest: str
    trace_records: int

    @property
    def detection_rate(self) -> float:
        if not self.faulty:
            return 1.0
        return len(self.detected) / len(self.faulty)


class ExperimentRunner:
    """Run a fault-injection campaign across a :class:`MonitorFleet`."""

    def __init__(
        self,
        fleet: MonitorFleet,
        duration: float = 120.0,
        mean_gap: float = 4.0,
        fault: str = "volume_overshoot",
        fault_fraction: float = 0.0,
        fault_time: Optional[float] = None,
        keys: Optional[List[str]] = None,
    ) -> None:
        self.fleet = fleet
        self.duration = duration
        self.mean_gap = mean_gap
        self.fault = fault
        self.fault_fraction = fault_fraction
        self.fault_time = fault_time if fault_time is not None else duration / 3.0
        self.keys = keys

    def run(self) -> FleetReport:
        fleet = self.fleet
        fleet.power_on_tvs()
        fleet.start_random_users(mean_gap=self.mean_gap, keys=self.keys)
        faulty = []
        if self.fault_fraction > 0.0:
            faulty = fleet.inject_faults(
                fraction=self.fault_fraction,
                fault=self.fault,
                at=fleet.kernel.now + self.fault_time,
            )
        start = wallclock.perf_counter()
        dispatched = fleet.run(self.duration)
        wall = wallclock.perf_counter() - start
        errors = {m.suo_id: m.error_count for m in fleet.members.values()}
        detected = [m.suo_id for m in faulty if m.error_count > 0]
        false_alarms = [
            m.suo_id
            for m in fleet.members.values()
            if not m.faulty and m.error_count > 0
        ]
        return FleetReport(
            members=len(fleet),
            duration=self.duration,
            dispatched=dispatched,
            wall_seconds=wall,
            events_per_sec=dispatched / wall if wall > 0 else 0.0,
            errors_by_suo=errors,
            faulty=[m.suo_id for m in faulty],
            detected=detected,
            false_alarms=false_alarms,
            trace_digest=fleet.trace_digest(),
            trace_records=fleet.trace.count(),
        )
