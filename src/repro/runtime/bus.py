"""The runtime event bus: one publish/subscribe plane for the whole stack.

The seed wired every observation path differently — the kernel had
``_dispatch_hooks``, the trace kept its own subscriber list, the SUOs
exposed ad-hoc ``*_hooks`` lists, and collaborators found each other
through the untyped ``kernel.registry`` dict.  :class:`EventBus` unifies
all of them behind one topic-based API so that the awareness framework's
probes and observers (paper Sect. 4.1, Fig. 2) attach to *topics*, not to
concrete objects, and so that many SUOs can share one kernel (the
:class:`~repro.runtime.fleet.MonitorFleet` workload).

Design constraints, in order:

* **Zero cost when silent.**  ``publish`` on a topic with no subscribers
  is one dict lookup and a falsy check; emitters may also hold a
  :meth:`EventBus.publisher` handle that skips even the lookup while the
  topic stays silent.
* **Safe mutation during dispatch.**  Subscriber lists are copy-on-write
  tuples: a callback may subscribe/unsubscribe anything (including
  itself) while being dispatched; the in-flight publish keeps iterating
  the snapshot it started with.
* **Deterministic order.**  Subscribers run in subscription order;
  wildcard subscribers run after exact ones, shortest prefix first.

Topics are dot-separated strings (``"suo.tv-7.output"``).  A trailing
``".*"`` subscribes to a whole namespace: ``"suo.tv-7.*"`` receives every
topic that starts with ``"suo.tv-7."``.  Wildcards cost one extra check
per publish *only while at least one wildcard subscription exists*.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Handler = Callable[[str, Any], None]

_EMPTY: Tuple[Handler, ...] = ()


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; ``cancel()`` detaches."""

    __slots__ = ("bus", "topic", "handler", "active")

    def __init__(self, bus: "EventBus", topic: str, handler: Handler) -> None:
        self.bus = bus
        self.topic = topic
        self.handler = handler
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self.bus.unsubscribe(self.topic, self.handler)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "cancelled"
        return f"<Subscription {self.topic!r} ({state})>"


class EventBus:
    """Topic-based publish/subscribe with copy-on-write subscriber lists."""

    __slots__ = ("_exact", "_wild", "_wild_order", "version")

    def __init__(self) -> None:
        #: topic -> tuple of handlers (replaced wholesale on change)
        self._exact: Dict[str, Tuple[Handler, ...]] = {}
        #: namespace prefix (without the ``*``) -> tuple of handlers
        self._wild: Dict[str, Tuple[Handler, ...]] = {}
        #: sorted wildcard prefixes, rebuilt on (un)subscribe so publish
        #: never sorts
        self._wild_order: Tuple[str, ...] = ()
        #: bumped on every (un)subscribe; lets emitters cache snapshots
        self.version = 0

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, handler: Handler) -> Subscription:
        """Attach ``handler(topic, event)`` to ``topic``.

        ``topic`` may end in ``".*"`` to subscribe to every topic in a
        namespace.  Returns a :class:`Subscription` whose ``cancel()``
        detaches exactly this registration.
        """
        table, key = self._resolve(topic)
        table[key] = table.get(key, _EMPTY) + (handler,)
        if table is self._wild:
            self._wild_order = tuple(sorted(self._wild))
        self.version += 1
        return Subscription(self, topic, handler)

    def unsubscribe(self, topic: str, handler: Handler) -> bool:
        """Detach the first matching registration; True if one was found."""
        table, key = self._resolve(topic)
        handlers = table.get(key, _EMPTY)
        if handler not in handlers:
            return False
        index = handlers.index(handler)
        remaining = handlers[:index] + handlers[index + 1:]
        if remaining:
            table[key] = remaining
        else:
            del table[key]
        if table is self._wild:
            self._wild_order = tuple(sorted(self._wild))
        self.version += 1
        return True

    def _resolve(
        self, topic: str
    ) -> Tuple[Dict[str, Tuple[Handler, ...]], str]:
        if topic.endswith(".*"):
            return self._wild, topic[:-1]  # keep the trailing dot
        return self._exact, topic

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, topic: str, event: Any = None) -> int:
        """Deliver ``event`` to every subscriber of ``topic``.

        Returns the number of handlers invoked.  The no-subscriber fast
        path is a single dict lookup.  When wildcards exist the complete
        handler snapshot (exact + wildcard, shortest prefix first) is
        taken *before* any handler runs, so callbacks may unsubscribe
        anything — including other namespaces — mid-publish.
        """
        if self._wild_order:
            handlers = self.snapshot(topic)
        else:
            handlers = self._exact.get(topic)
            if not handlers:
                return 0
        for handler in handlers:
            handler(topic, event)
        return len(handlers)

    def listeners(self, topic: str) -> Tuple[Handler, ...]:
        """The current *exact*-subscriber snapshot for a topic.

        Wildcard subscribers are not included; most emitters want
        :meth:`snapshot` or :meth:`publisher` instead.
        """
        return self._exact.get(topic, _EMPTY)

    def snapshot(self, topic: str) -> Tuple[Handler, ...]:
        """Every current subscriber of ``topic``, wildcards folded in.

        Hot-path emitters (the kernel's dispatch loop) cache this tuple
        and refresh it when :attr:`version` changes; the tuple is
        immutable, so holding it across callbacks is safe.
        """
        handlers = self._exact.get(topic, _EMPTY)
        if self._wild_order:
            for prefix in self._wild_order:
                if topic.startswith(prefix):
                    handlers += self._wild[prefix]
        return handlers

    def publisher(self, topic: str) -> Callable[[Any], int]:
        """A bound fast emitter for one topic.

        The handle re-snapshots subscribers only when the bus version
        changes, so a silent topic costs one int compare per emit.
        Wildcard subscribers are folded into the snapshot.
        """
        state: List[Any] = [-1, _EMPTY]

        def emit(event: Any = None) -> int:
            if state[0] != self.version:
                state[0] = self.version
                state[1] = self.snapshot(topic)
            handlers = state[1]
            for handler in handlers:
                handler(topic, event)
            return len(handlers)

        return emit

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def has_subscribers(self, topic: str) -> bool:
        if self._exact.get(topic):
            return True
        if self._wild:
            return any(topic.startswith(prefix) for prefix in self._wild)
        return False

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        """Subscribers of one topic, or of the whole bus when None."""
        if topic is not None:
            count = len(self._exact.get(topic, _EMPTY))
            return count + sum(
                len(handlers)
                for prefix, handlers in self._wild.items()
                if topic.startswith(prefix)
            )
        return sum(len(h) for h in self._exact.values()) + sum(
            len(h) for h in self._wild.values()
        )

    def topics(self) -> Iterator[str]:
        """Every topic/namespace that currently has subscribers."""
        yield from self._exact
        for prefix in self._wild:
            yield prefix + "*"
