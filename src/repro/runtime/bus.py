"""The runtime event bus: one publish/subscribe plane for the whole stack.

The seed wired every observation path differently — the kernel had
``_dispatch_hooks``, the trace kept its own subscriber list, the SUOs
exposed ad-hoc ``*_hooks`` lists, and collaborators found each other
through the untyped ``kernel.registry`` dict.  :class:`EventBus` unifies
all of them behind one topic-based API so that the awareness framework's
probes and observers (paper Sect. 4.1, Fig. 2) attach to *topics*, not to
concrete objects, and so that many SUOs can share one kernel (the
:class:`~repro.runtime.fleet.MonitorFleet` workload).

Design constraints, in order:

* **Zero cost when silent.**  ``publish`` on a topic with no subscribers
  is one dict lookup and a falsy check; emitters may also hold a
  :meth:`EventBus.publisher` handle that skips even the lookup while the
  topic stays silent.
* **Safe mutation during dispatch.**  Subscriber lists are copy-on-write
  tuples: a callback may subscribe/unsubscribe anything (including
  itself) while being dispatched; the in-flight publish keeps iterating
  the snapshot it started with.
* **Deterministic order.**  Subscribers run in subscription order;
  wildcard subscribers run after exact ones, shortest prefix first.

Topics are dot-separated strings (``"suo.tv-7.output"``).  A trailing
``".*"`` subscribes to a whole namespace: ``"suo.tv-7.*"`` receives every
topic that starts with ``"suo.tv-7."``.

Dispatch is driven by a **compiled dispatch table**: the first publish on
a concrete topic resolves it once — exact subscribers plus every matching
wildcard, pre-folded into one flat handler tuple — and caches the result
in a topic→tuple table.  Subsequent publishes are a single dict lookup
regardless of how many wildcard namespaces exist; the table is
invalidated wholesale whenever a (un)subscribe bumps :attr:`version`.
Before this table, every publish under N ``suo.<id>.*`` subscribers paid
an O(N) prefix scan — the dominant dispatch cost at fleet scale.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

Handler = Callable[[str, Any], None]

_EMPTY: Tuple[Handler, ...] = ()


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; ``cancel()`` detaches."""

    __slots__ = ("bus", "topic", "handler", "active")

    def __init__(self, bus: "EventBus", topic: str, handler: Handler) -> None:
        self.bus = bus
        self.topic = topic
        self.handler = handler
        self.active = True

    def cancel(self) -> None:
        if self.active:
            self.active = False
            self.bus.unsubscribe(self.topic, self.handler)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "cancelled"
        return f"<Subscription {self.topic!r} ({state})>"


class EventBus:
    """Topic-based publish/subscribe with copy-on-write subscriber lists."""

    __slots__ = ("_exact", "_wild", "_wild_order", "_compiled", "version")

    def __init__(self) -> None:
        #: topic -> tuple of handlers (replaced wholesale on change)
        self._exact: Dict[str, Tuple[Handler, ...]] = {}
        #: namespace prefix (without the ``*``) -> tuple of handlers
        self._wild: Dict[str, Tuple[Handler, ...]] = {}
        #: sorted wildcard prefixes, rebuilt on (un)subscribe so publish
        #: never sorts
        self._wild_order: Tuple[str, ...] = ()
        #: compiled dispatch table: concrete topic -> flat handler tuple
        #: (exact + matching wildcards, dispatch order), built lazily on
        #: first publish and cleared wholesale on every (un)subscribe
        self._compiled: Dict[str, Tuple[Handler, ...]] = {}
        #: bumped on every (un)subscribe; lets emitters cache snapshots
        self.version = 0

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, handler: Handler) -> Subscription:
        """Attach ``handler(topic, event)`` to ``topic``.

        ``topic`` may end in ``".*"`` to subscribe to every topic in a
        namespace.  Returns a :class:`Subscription` whose ``cancel()``
        detaches exactly this registration.
        """
        table, key = self._resolve(topic)
        table[key] = table.get(key, _EMPTY) + (handler,)
        if table is self._wild:
            self._wild_order = tuple(sorted(self._wild))
        self._compiled.clear()
        self.version += 1
        return Subscription(self, topic, handler)

    def unsubscribe(self, topic: str, handler: Handler) -> bool:
        """Detach the first matching registration; True if one was found."""
        table, key = self._resolve(topic)
        handlers = table.get(key, _EMPTY)
        if handler not in handlers:
            return False
        index = handlers.index(handler)
        remaining = handlers[:index] + handlers[index + 1:]
        if remaining:
            table[key] = remaining
        else:
            del table[key]
        if table is self._wild:
            self._wild_order = tuple(sorted(self._wild))
        self._compiled.clear()
        self.version += 1
        return True

    def _resolve(
        self, topic: str
    ) -> Tuple[Dict[str, Tuple[Handler, ...]], str]:
        if topic.endswith(".*"):
            return self._wild, topic[:-1]  # keep the trailing dot
        return self._exact, topic

    # ------------------------------------------------------------------
    # compiled dispatch table
    # ------------------------------------------------------------------
    def _compile(self, topic: str) -> Tuple[Handler, ...]:
        """Resolve ``topic`` once into its flat dispatch tuple and cache it.

        Exact subscribers first (subscription order), then every matching
        wildcard namespace, shortest prefix first — exactly the order the
        per-publish walk used to produce.
        """
        handlers = self._exact.get(topic, _EMPTY)
        for prefix in self._wild_order:
            if topic.startswith(prefix):
                handlers += self._wild[prefix]
        self._compiled[topic] = handlers
        return handlers

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, topic: str, event: Any = None) -> int:
        """Deliver ``event`` to every subscriber of ``topic``.

        Returns the number of handlers invoked.  The steady-state cost is
        one dict lookup into the compiled table (empty or not); a topic
        publishes through the slow resolve path only on its first publish
        after a subscription change.  The handler snapshot is immutable
        and taken *before* any handler runs, so callbacks may
        (un)subscribe anything — including other namespaces — mid-publish.
        """
        handlers = self._compiled.get(topic)
        if handlers is None:
            handlers = self._compile(topic)
        for handler in handlers:
            handler(topic, event)
        return len(handlers)

    def listeners(self, topic: str) -> Tuple[Handler, ...]:
        """The current *exact*-subscriber snapshot for a topic.

        Wildcard subscribers are not included; most emitters want
        :meth:`snapshot` or :meth:`publisher` instead.
        """
        return self._exact.get(topic, _EMPTY)

    def snapshot(self, topic: str) -> Tuple[Handler, ...]:
        """Every current subscriber of ``topic``, wildcards folded in.

        Hot-path emitters (the kernel's dispatch loop) cache this tuple
        and refresh it when :attr:`version` changes; the tuple is
        immutable, so holding it across callbacks is safe.  Served from
        the compiled dispatch table (one dict lookup when warm).
        """
        handlers = self._compiled.get(topic)
        if handlers is None:
            handlers = self._compile(topic)
        return handlers

    def publisher(self, topic: str) -> Callable[[Any], int]:
        """A bound fast emitter for one topic.

        The handle re-resolves its compiled handler tuple only when the
        bus version changes, so a silent topic costs one int compare per
        emit.  Wildcard subscribers are folded into the tuple.
        """
        state: List[Any] = [-1, _EMPTY]
        compiled = self._compiled

        def emit(event: Any = None) -> int:
            if state[0] != self.version:
                state[0] = self.version
                handlers = compiled.get(topic)
                if handlers is None:
                    handlers = self._compile(topic)
                state[1] = handlers
            handlers = state[1]
            for handler in handlers:
                handler(topic, event)
            return len(handlers)

        return emit

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def has_subscribers(self, topic: str) -> bool:
        """True if a publish on ``topic`` would reach anyone.

        O(1) when warm: served from the same compiled table publishes
        use, instead of the linear scan over every wildcard namespace
        this used to cost per call.
        """
        handlers = self._compiled.get(topic)
        if handlers is None:
            handlers = self._compile(topic)
        return bool(handlers)

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        """Subscribers of one topic, or of the whole bus when None."""
        if topic is not None:
            handlers = self._compiled.get(topic)
            if handlers is None:
                handlers = self._compile(topic)
            return len(handlers)
        return sum(len(h) for h in self._exact.values()) + sum(
            len(h) for h in self._wild.values()
        )

    def topics(self) -> Iterator[str]:
        """Every topic/namespace that currently has subscribers."""
        yield from self._exact
        for prefix in self._wild:
            yield prefix + "*"
