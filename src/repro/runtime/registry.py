"""Typed service registry, replacing the ``kernel.registry`` dict.

The seed kernel carried an untyped ``Dict[str, Any]`` that collaborators
used as a blind drop-box.  :class:`ServiceRegistry` keeps the mapping
interface (so ``kernel.registry["trace"] = t`` still works) but adds a
typed provide/resolve protocol and announces registrations on the runtime
bus, which lets late-attaching observers discover services without
polling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Type, TypeVar

from .bus import EventBus

T = TypeVar("T")

#: Topic on which every registration is announced: payload ``(name, service)``.
TOPIC_PROVIDE = "registry.provide"


class ServiceRegistry:
    """Named services with optional type-checked resolution."""

    __slots__ = ("_services", "_bus")

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._services: Dict[str, Any] = {}
        self._bus = bus

    # -- typed protocol -------------------------------------------------
    def provide(self, name: str, service: Any) -> Any:
        """Register ``service`` under ``name`` (returns it for chaining)."""
        self._services[name] = service
        if self._bus is not None:
            self._bus.publish(TOPIC_PROVIDE, (name, service))
        return service

    def resolve(
        self,
        name: str,
        expected_type: Optional[Type[T]] = None,
        default: Any = None,
    ) -> Any:
        """Look up ``name``; verify ``expected_type`` when given."""
        service = self._services.get(name, default)
        if (
            expected_type is not None
            and service is not None
            and not isinstance(service, expected_type)
        ):
            raise TypeError(
                f"service {name!r} is {type(service).__name__}, "
                f"expected {expected_type.__name__}"
            )
        return service

    # -- mapping compatibility ------------------------------------------
    def __setitem__(self, name: str, service: Any) -> None:
        self.provide(name, service)

    def __getitem__(self, name: str) -> Any:
        return self._services[name]

    def __delitem__(self, name: str) -> None:
        del self._services[name]

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[str]:
        return iter(self._services)

    def get(self, name: str, default: Any = None) -> Any:
        return self._services.get(name, default)

    def setdefault(self, name: str, default: Any = None) -> Any:
        if name not in self._services:
            self.provide(name, default)
        return self._services[name]

    def keys(self):
        return self._services.keys()

    def items(self):
        return self._services.items()

    def values(self):
        return self._services.values()
