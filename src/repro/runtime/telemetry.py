"""Streaming fleet telemetry: bounded-memory observation of big campaigns.

The merged fleet :class:`~repro.sim.trace.Trace` is the right tool up to a
few hundred SUOs — every record retained, queryable after the fact, and
hashable into the determinism witness.  At the thousand-SUO scale the
ROADMAP asks for, retaining every record is exactly the "observation
degrades the system" failure the paper's overhead constraint (Sect. 2)
warns about, applied to memory instead of time.

This module provides the bounded alternative: aggregators that subscribe
to the runtime bus and fold the event stream into fixed-size state —

* :class:`CounterSet`        — named monotonic counters;
* :class:`WindowedRate`      — event rate over a sliding window of
  *simulated* time, kept in a fixed ring of buckets;
* :class:`ReservoirHistogram`— Vitter Algorithm-R sample of a value
  stream (seeded, hence deterministic) plus exact count/sum/min/max;
* :class:`SuoTally`          — per-SUO input/output/stimulus/error counts;
* :class:`FleetTelemetry`    — the hub: one ``suo.*`` subscription that
  feeds all of the above and renders a canonical :meth:`summary` whose
  :meth:`digest` is byte-stable for a fixed seed.

Everything is keyed to simulated time, never wall-clock, so two runs of
the same seeded scenario produce byte-identical summaries.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Dict, List, Optional

from .bus import EventBus, Subscription


class CounterSet:
    """Named monotonic counters with a canonical sorted view."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Counters in sorted-key order (canonical for digesting)."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def __len__(self) -> int:
        return len(self._counts)


class WindowedRate:
    """Event rate over a sliding window of simulated time.

    A fixed ring of ``buckets`` equal slices covers the trailing
    ``window`` time units; adding an event advances the ring (zeroing
    slices the clock skipped) and bumps the current slice.  Memory is
    O(buckets) regardless of traffic.

    ``rate()`` divides the in-window count by the window actually
    *covered* so far, so early in a run (elapsed < window) the rate is
    not diluted by empty future slices.
    """

    __slots__ = ("window", "buckets", "_width", "_counts", "_head", "_total",
                 "_clock", "_started")

    def __init__(
        self,
        clock: Callable[[], float],
        window: float = 10.0,
        buckets: int = 20,
    ) -> None:
        if window <= 0 or buckets <= 0:
            raise ValueError("window and buckets must be positive")
        self.window = window
        self.buckets = buckets
        self._width = window / buckets
        self._counts = [0] * buckets
        self._head = 0  # absolute index of the newest bucket
        self._total = 0
        self._clock = clock
        self._started = clock()

    def _advance(self, now: float) -> None:
        index = int(now / self._width)
        if index <= self._head:
            return
        steps = index - self._head
        if steps >= self.buckets:
            self._counts = [0] * self.buckets
            self._total = 0
        else:
            for offset in range(1, steps + 1):
                slot = (self._head + offset) % self.buckets
                self._total -= self._counts[slot]
                self._counts[slot] = 0
        self._head = index

    def add(self, amount: int = 1) -> None:
        now = self._clock()
        self._advance(now)
        self._counts[self._head % self.buckets] += amount
        self._total += amount

    def count(self) -> int:
        """Events inside the trailing window."""
        self._advance(self._clock())
        return self._total

    def rate(self) -> float:
        """Events per simulated time unit over the covered window."""
        now = self._clock()
        self._advance(now)
        covered = min(max(now - self._started, self._width), self.window)
        return self._total / covered


class ReservoirHistogram:
    """Seeded Algorithm-R reservoir over a value stream, plus exact
    count/sum/min/max.

    The reservoir holds at most ``capacity`` samples whatever the stream
    length; quantiles are computed from the sample, the scalar stats are
    exact.  With a seeded ``rng`` the retained sample — and therefore the
    whole summary — is deterministic for a fixed input stream.
    """

    __slots__ = ("capacity", "_rng", "_samples", "count", "total",
                 "min", "max")

    def __init__(self, capacity: int = 512, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = rng or random.Random(0)
        self._samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        index = self.count
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if index < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(index + 1)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def retained(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained sample (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def stats(self, digits: int = 9) -> Dict[str, Any]:
        """Canonical JSON-friendly stat block (rounded for stability)."""
        return {
            "count": self.count,
            "mean": round(self.mean(), digits),
            "min": round(self.min, digits) if self.min is not None else 0.0,
            "p50": round(self.quantile(0.50), digits),
            "p90": round(self.quantile(0.90), digits),
            "p99": round(self.quantile(0.99), digits),
            "max": round(self.max, digits) if self.max is not None else 0.0,
            "retained": self.retained,
        }


class SuoTally:
    """Fixed-size per-SUO ledger: one int per event kind."""

    __slots__ = ("inputs", "outputs", "stimuli", "errors", "other")

    def __init__(self) -> None:
        self.inputs = 0
        self.outputs = 0
        self.stimuli = 0
        self.errors = 0
        self.other = 0

    def bump(self, kind: str) -> None:
        if kind == "output":
            self.outputs += 1
        elif kind == "input":
            self.inputs += 1
        elif kind == "stimulus":
            self.stimuli += 1
        elif kind == "error":
            self.errors += 1
        else:
            self.other += 1

    @property
    def events(self) -> int:
        return self.inputs + self.outputs + self.stimuli + self.errors + self.other


class FleetTelemetry:
    """The streaming-aggregation hub for one ``suo.*`` namespace.

    One wildcard subscription feeds every aggregator; memory is bounded
    by O(members + buckets + reservoir capacity), independent of how many
    events the campaign dispatches.  :meth:`summary` renders the whole
    state into a canonical dict keyed only to simulated time, and
    :meth:`digest` hashes it — the bounded-memory analogue of
    ``MonitorFleet.trace_digest``.

    Latency observation is push-based: wire message channels through
    :meth:`observe_latency` (``MonitorFleet`` does this for every
    monitor's input/output channel) to sample delivery latencies into the
    reservoir histogram.
    """

    def __init__(
        self,
        bus: EventBus,
        clock: Callable[[], float],
        rng: Optional[random.Random] = None,
        namespace: str = "suo",
        window: float = 10.0,
        buckets: int = 20,
        reservoir: int = 512,
    ) -> None:
        self.namespace = namespace
        self.kinds = CounterSet()
        self.per_suo: Dict[str, SuoTally] = {}
        self.events_total = 0
        self.event_rate = WindowedRate(clock, window=window, buckets=buckets)
        self.latency = ReservoirHistogram(capacity=reservoir, rng=rng)
        self._clock = clock
        self._subscription: Optional[Subscription] = bus.subscribe(
            f"{namespace}.*", self._on_event
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def tally(self, suo_id: str) -> SuoTally:
        """The (created-on-demand) ledger for one SUO.

        ``MonitorFleet`` hands each admitted member its tally so member
        counters and telemetry are one shared state, not two copies.
        """
        tally = self.per_suo.get(suo_id)
        if tally is None:
            tally = self.per_suo[suo_id] = SuoTally()
        return tally

    def _on_event(self, topic: str, event: Any) -> None:
        # topic == "<namespace>.<suo_id>.<kind>"
        try:
            _, suo_id, kind = topic.split(".", 2)
        except ValueError:
            suo_id, kind = topic[len(self.namespace) + 1:], "other"
        self.events_total += 1
        self.kinds.inc(kind)
        self.event_rate.add()
        self.tally(suo_id).bump(kind)

    def observe_latency(self, seconds: float) -> None:
        """Sample one delivery latency (simulated seconds)."""
        self.latency.add(seconds)

    def detach(self) -> None:
        """Stop ingesting; aggregated state stays queryable."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    # ------------------------------------------------------------------
    # canonical output
    # ------------------------------------------------------------------
    def errors_by_suo(self) -> Dict[str, int]:
        """Per-SUO error tallies (only SUOs that reported any), sorted."""
        return {
            suo_id: tally.errors
            for suo_id, tally in sorted(self.per_suo.items())
            if tally.errors
        }

    def summary(self, per_suo: bool = False) -> Dict[str, Any]:
        """The canonical aggregate view: pure simulated-time state.

        Deliberately excludes anything wall-clock, so a fixed seed yields
        a byte-identical summary run over run.  With ``per_suo`` the full
        per-member ledger is included (one small dict per SUO).
        """
        result: Dict[str, Any] = {
            "time": round(self._clock(), 9),
            "suos": len(self.per_suo),
            "events_total": self.events_total,
            "events_by_kind": self.kinds.as_dict(),
            "window_rate": round(self.event_rate.rate(), 9),
            "latency": self.latency.stats(),
            "errors_total": self.kinds.get("error"),
            "errors_by_suo": self.errors_by_suo(),
        }
        if per_suo:
            result["per_suo"] = {
                suo_id: {
                    "inputs": tally.inputs,
                    "outputs": tally.outputs,
                    "stimuli": tally.stimuli,
                    "errors": tally.errors,
                    "other": tally.other,
                }
                for suo_id, tally in sorted(self.per_suo.items())
            }
        return result

    def digest(self) -> str:
        """SHA-256 over the canonical summary (bounded-memory witness)."""
        canonical = json.dumps(
            self.summary(per_suo=True), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
