"""Streaming fleet telemetry: bounded-memory observation of big campaigns.

The merged fleet :class:`~repro.sim.trace.Trace` is the right tool up to a
few hundred SUOs — every record retained, queryable after the fact, and
hashable into the determinism witness.  At the thousand-SUO scale the
ROADMAP asks for, retaining every record is exactly the "observation
degrades the system" failure the paper's overhead constraint (Sect. 2)
warns about, applied to memory instead of time.

This module provides the bounded alternative: aggregators that subscribe
to the runtime bus and fold the event stream into fixed-size state —

* :class:`CounterSet`        — named monotonic counters;
* :class:`WindowedRate`      — event rate over a sliding window of
  *simulated* time, kept in a fixed ring of buckets;
* :class:`ReservoirHistogram`— Vitter Algorithm-R sample of a value
  stream (seeded, hence deterministic) plus exact count/sum/min/max;
* :class:`SuoTally`          — per-SUO input/output/stimulus/error counts;
* :class:`FleetTelemetry`    — the hub: one ``suo.*`` subscription that
  feeds all of the above and renders a canonical :meth:`summary` whose
  :meth:`digest` is byte-stable for a fixed seed.

Everything is keyed to simulated time, never wall-clock, so two runs of
the same seeded scenario produce byte-identical summaries.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Dict, List, Optional

from .bus import EventBus, Subscription


class CounterSet:
    """Named monotonic counters with a canonical sorted view."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, int]:
        """Counters in sorted-key order (canonical for digesting)."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def __len__(self) -> int:
        return len(self._counts)


class WindowedRate:
    """Event rate over a sliding window of simulated time.

    A fixed ring of ``buckets`` equal slices covers the trailing
    ``window`` time units; adding an event advances the ring (zeroing
    slices the clock skipped) and bumps the current slice.  Memory is
    O(buckets) regardless of traffic.

    ``rate()`` divides the in-window count by the window actually
    *covered* so far, so early in a run (elapsed < window) the rate is
    not diluted by empty future slices.
    """

    __slots__ = ("window", "buckets", "_width", "_counts", "_head", "_total",
                 "_clock", "_started")

    def __init__(
        self,
        clock: Callable[[], float],
        window: float = 10.0,
        buckets: int = 20,
    ) -> None:
        if window <= 0 or buckets <= 0:
            raise ValueError("window and buckets must be positive")
        self.window = window
        self.buckets = buckets
        self._width = window / buckets
        self._counts = [0] * buckets
        self._head = 0  # absolute index of the newest bucket
        self._total = 0
        self._clock = clock
        self._started = clock()

    def _advance(self, now: float) -> None:
        index = int(now / self._width)
        if index <= self._head:
            return
        steps = index - self._head
        if steps >= self.buckets:
            self._counts = [0] * self.buckets
            self._total = 0
        else:
            for offset in range(1, steps + 1):
                slot = (self._head + offset) % self.buckets
                self._total -= self._counts[slot]
                self._counts[slot] = 0
        self._head = index

    def add(self, amount: int = 1) -> None:
        self.add_at(self._clock(), amount)

    def add_at(self, now: float, amount: int = 1) -> None:
        """Credit ``amount`` events to the bucket covering ``now``.

        ``now`` must not be older than the ring head (simulated clocks
        are monotone and every reader advances through the same fold
        order), which is what lets :class:`FleetTelemetry` defer a
        same-timestamp burst and still land it in the right bucket.
        """
        self._advance(now)
        self._counts[self._head % self.buckets] += amount
        self._total += amount

    def count(self) -> int:
        """Events inside the trailing window."""
        self._advance(self._clock())
        return self._total

    def rate(self) -> float:
        """Events per simulated time unit over the covered window."""
        now = self._clock()
        self._advance(now)
        covered = min(max(now - self._started, self._width), self.window)
        return self._total / covered


class ReservoirHistogram:
    """Seeded Algorithm-R reservoir over a value stream, plus exact
    count/sum/min/max.

    The reservoir holds at most ``capacity`` samples whatever the stream
    length; quantiles are computed from the sample, the scalar stats are
    exact.  With a seeded ``rng`` the retained sample — and therefore the
    whole summary — is deterministic for a fixed input stream.
    """

    __slots__ = ("capacity", "_rng", "_samples", "count", "total",
                 "min", "max")

    def __init__(self, capacity: int = 512, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = rng or random.Random(0)
        self._samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, value: float) -> None:
        index = self.count
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if index < self.capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(index + 1)
            if slot < self.capacity:
                self._samples[slot] = value

    @property
    def retained(self) -> int:
        return len(self._samples)

    def samples(self, digits: int = 9) -> List[float]:
        """The retained sample, in retention order (rounded for
        canonical JSON).  Shard workers ship this so
        :func:`merge_summaries` can re-sample the merged reservoir."""
        return [round(value, digits) for value in self._samples]

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained sample (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def stats(self, digits: int = 9) -> Dict[str, Any]:
        """Canonical JSON-friendly stat block (rounded for stability)."""
        return {
            "count": self.count,
            "mean": round(self.mean(), digits),
            "min": round(self.min, digits) if self.min is not None else 0.0,
            "p50": round(self.quantile(0.50), digits),
            "p90": round(self.quantile(0.90), digits),
            "p99": round(self.quantile(0.99), digits),
            "max": round(self.max, digits) if self.max is not None else 0.0,
            "retained": self.retained,
        }


class RecoveryStats:
    """Bounded aggregate of recovery-ladder activity (PR 4).

    Fed from ``suo.<id>.recovery`` events published by the scenario
    recovery harness: every executed rung counts into ``actions``; a
    completed episode additionally carries its time-to-recover, sampled
    into a seeded reservoir and folded into exact per-wave scalars.
    Everything is keyed to simulated time, so the per-wave count/min/max
    core is placement-invariant under sharding (each member recovers on
    exactly one shard, on its own deterministic timeline).
    """

    __slots__ = ("actions", "ttr", "waves")

    def __init__(self, capacity: int = 512, rng: Optional[random.Random] = None) -> None:
        self.actions = CounterSet()
        self.ttr = ReservoirHistogram(capacity=capacity, rng=rng)
        #: wave label -> exact {count, min, max, sum} over its TTRs.
        self.waves: Dict[str, Dict[str, float]] = {}

    def observe(self, event: Any) -> None:
        """Fold one recovery event (a dict with action/wave/ttr keys)."""
        if not isinstance(event, dict):
            return
        action = event.get("action")
        if action:
            self.actions.inc(str(action))
        ttr = event.get("ttr")
        if ttr is None:
            return
        ttr = float(ttr)
        self.ttr.add(ttr)
        wave = str(event.get("wave", "?"))
        entry = self.waves.get(wave)
        if entry is None:
            self.waves[wave] = {"count": 1, "min": ttr, "max": ttr, "sum": ttr}
        else:
            entry["count"] += 1
            entry["min"] = min(entry["min"], ttr)
            entry["max"] = max(entry["max"], ttr)
            entry["sum"] += ttr

    def summary(self, samples: bool = False, digits: int = 9) -> Dict[str, Any]:
        """Canonical JSON-friendly view (see :meth:`FleetTelemetry.summary`)."""
        ttr = self.ttr.stats(digits)
        if samples:
            ttr["samples"] = self.ttr.samples(digits)
        return {
            "recovered": self.ttr.count,
            "actions": self.actions.as_dict(),
            "ttr": ttr,
            "waves": {
                wave: {
                    "count": int(entry["count"]),
                    "min": round(entry["min"], digits),
                    "max": round(entry["max"], digits),
                    "mean": round(entry["sum"] / entry["count"], digits),
                }
                for wave, entry in sorted(self.waves.items())
            },
        }


class DiagnosisStats:
    """Bounded aggregate of diagnosis-guided rebind outcomes (PR 5).

    Fed from the same ``suo.<id>.recovery`` events as
    :class:`RecoveryStats`: every rebind published by the scenario
    recovery harness carries its localization outcome — targeted or
    full, which component the SFL ranking suspected, the rank the true
    faulty component achieved, and (for targeted rebinds) whether the
    suspect was a hit.  Everything except the TTR quantiles is exact
    integer counting over per-member timelines, hence shard-invariant.
    """

    __slots__ = ("rebinds", "suspects", "ranks", "hits", "misses", "ttr")

    def __init__(self, capacity: int = 512, rng: Optional[random.Random] = None) -> None:
        #: mode ("targeted" / "full") -> rebind count.
        self.rebinds = CounterSet()
        #: suspect component -> times the ranking nominated it.
        self.suspects = CounterSet()
        #: str(rank of the true faulty component) -> completed-episode
        #: count (folded at the closing rebind, once per episode).
        self.ranks = CounterSet()
        #: Targeted rebinds whose suspect was / was not the true fault.
        self.hits = 0
        self.misses = 0
        #: Time-to-recover of episodes *closed* by each rebind mode —
        #: the targeted-vs-full TTR delta the ROADMAP asks to measure.
        self.ttr: Dict[str, ReservoirHistogram] = {
            "targeted": ReservoirHistogram(capacity=capacity, rng=rng),
            "full": ReservoirHistogram(capacity=capacity, rng=rng),
        }

    def observe(self, event: Any) -> None:
        """Fold one recovery event; ignores rungs without diagnosis."""
        if not isinstance(event, dict) or event.get("action") != "rebind":
            return
        mode = event.get("mode")
        if mode is None:
            return
        mode = str(mode)
        self.rebinds.inc(mode)
        suspect = event.get("suspect")
        if suspect:
            self.suspects.inc(str(suspect))
        # Count the rank once per EPISODE, on the rebind that closes it
        # (carries the TTR) — a targeted miss followed by the closing
        # full rebind must not count the episode twice, or the gated
        # accuracy would under-report whenever any miss occurs.  An
        # episode whose true component never entered the ranking counts
        # as "unranked": dropping it would shrink the accuracy
        # denominator exactly when localization fails worst.
        if event.get("ttr") is not None:
            rank = event.get("true_rank")
            if isinstance(rank, int) and not isinstance(rank, bool) and rank > 0:
                self.ranks.inc(str(rank))
            else:
                self.ranks.inc("unranked")
        hit = event.get("hit")
        if hit is True:
            self.hits += 1
        elif hit is False:
            self.misses += 1
        ttr = event.get("ttr")
        if ttr is not None and mode in self.ttr:
            self.ttr[mode].add(float(ttr))

    def summary(self, samples: bool = False, digits: int = 9) -> Dict[str, Any]:
        """Canonical JSON-friendly view (see :meth:`FleetTelemetry.summary`)."""
        ranked = self.ranks.total()
        rank_first = self.ranks.get("1")
        total = self.rebinds.total()
        ttr: Dict[str, Any] = {}
        for mode in sorted(self.ttr):
            block = self.ttr[mode].stats(digits)
            if samples:
                block["samples"] = self.ttr[mode].samples(digits)
            ttr[mode] = block
        return {
            "rebinds": self.rebinds.as_dict(),
            "suspects": self.suspects.as_dict(),
            "rank_of_true": self.ranks.as_dict(),
            "hits": self.hits,
            "misses": self.misses,
            "localization_accuracy": (
                round(rank_first / ranked, digits) if ranked else 0.0
            ),
            "targeted_rebind_rate": (
                round(self.rebinds.get("targeted") / total, digits) if total else 0.0
            ),
            "ttr": ttr,
        }


class SuoTally:
    """Fixed-size per-SUO ledger: one int per event kind."""

    __slots__ = ("inputs", "outputs", "stimuli", "errors", "other")

    def __init__(self) -> None:
        self.inputs = 0
        self.outputs = 0
        self.stimuli = 0
        self.errors = 0
        self.other = 0

    def bump(self, kind: str) -> None:
        self.bump_many(kind, 1)

    def bump_many(self, kind: str, count: int) -> None:
        if kind == "output":
            self.outputs += count
        elif kind == "input":
            self.inputs += count
        elif kind == "stimulus":
            self.stimuli += count
        elif kind == "error":
            self.errors += count
        else:
            self.other += count

    @property
    def events(self) -> int:
        return self.inputs + self.outputs + self.stimuli + self.errors + self.other


class FleetTelemetry:
    """The streaming-aggregation hub for one ``suo.*`` namespace.

    One wildcard subscription feeds every aggregator; memory is bounded
    by O(members + buckets + reservoir capacity), independent of how many
    events the campaign dispatches.  :meth:`summary` renders the whole
    state into a canonical dict keyed only to simulated time, and
    :meth:`digest` hashes it — the bounded-memory analogue of
    ``MonitorFleet.trace_digest``.

    Latency observation is push-based: wire message channels through
    :meth:`observe_latency` (``MonitorFleet`` does this for every
    monitor's input/output channel) to sample delivery latencies into the
    reservoir histogram.
    """

    def __init__(
        self,
        bus: EventBus,
        clock: Callable[[], float],
        rng: Optional[random.Random] = None,
        namespace: str = "suo",
        window: float = 10.0,
        buckets: int = 20,
        reservoir: int = 512,
    ) -> None:
        self.namespace = namespace
        self._kinds = CounterSet()
        self._per_suo: Dict[str, SuoTally] = {}
        self._events_total = 0
        self.event_rate = WindowedRate(clock, window=window, buckets=buckets)
        self.latency = ReservoirHistogram(capacity=reservoir, rng=rng)
        self.recovery = RecoveryStats(capacity=reservoir, rng=rng)
        self.diagnosis = DiagnosisStats(capacity=reservoir, rng=rng)
        self._clock = clock
        #: concrete topic -> (kind, SuoTally): parsing and tally lookup
        #: happen once per distinct topic, not once per event.
        self._topic_cache: Dict[str, Any] = {}
        #: Deferred same-(topic, timestamp) burst: a member that emits
        #: several events on one topic in one kernel batch folds them as
        #: ONE update when the burst ends.  Every read path flushes
        #: first, and the fold credits the burst's own timestamp, so the
        #: rate buckets — and hence the digest — are unchanged.
        self._pending_entry: Any = None
        self._pending_topic: Optional[str] = None
        self._pending_now = 0.0
        self._pending_count = 0
        self._subscription: Optional[Subscription] = bus.subscribe(
            f"{namespace}.*", self._on_event
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @property
    def events_total(self) -> int:
        self.flush()
        return self._events_total

    @property
    def kinds(self) -> CounterSet:
        self.flush()
        return self._kinds

    @property
    def per_suo(self) -> Dict[str, SuoTally]:
        self.flush()
        return self._per_suo

    def tally(self, suo_id: str) -> SuoTally:
        """The (created-on-demand) ledger for one SUO.

        ``MonitorFleet`` hands each admitted member its tally so member
        counters and telemetry are one shared state, not two copies.
        """
        self.flush()
        tally = self._per_suo.get(suo_id)
        if tally is None:
            tally = self._per_suo[suo_id] = SuoTally()
        return tally

    def _on_event(self, topic: str, event: Any) -> None:
        now = self._clock()
        if topic == self._pending_topic and now == self._pending_now:
            self._pending_count += 1
            if self._pending_entry[0] == "recovery":
                self.recovery.observe(event)
                self.diagnosis.observe(event)
            return
        if self._pending_count:
            self._flush_pending()
        entry = self._topic_cache.get(topic)
        if entry is None:
            # topic == "<namespace>.<suo_id>.<kind>"
            try:
                _, suo_id, kind = topic.split(".", 2)
            except ValueError:
                suo_id, kind = topic[len(self.namespace) + 1:], "other"
            tally = self._per_suo.get(suo_id)
            if tally is None:
                tally = self._per_suo[suo_id] = SuoTally()
            entry = self._topic_cache[topic] = (kind, tally)
        self._pending_entry = entry
        self._pending_topic = topic
        self._pending_now = now
        self._pending_count = 1
        if entry[0] == "recovery":
            self.recovery.observe(event)
            self.diagnosis.observe(event)

    def _flush_pending(self) -> None:
        count = self._pending_count
        kind, tally = self._pending_entry
        self._pending_count = 0
        self._pending_topic = None
        self._events_total += count
        self._kinds.inc(kind, count)
        self.event_rate.add_at(self._pending_now, count)
        if count == 1:
            tally.bump(kind)
        else:
            tally.bump_many(kind, count)

    def flush(self) -> None:
        """Fold any deferred burst; reads route through here."""
        if self._pending_count:
            self._flush_pending()

    def observe_latency(self, seconds: float) -> None:
        """Sample one delivery latency (simulated seconds)."""
        self.latency.add(seconds)

    def detach(self) -> None:
        """Stop ingesting; aggregated state stays queryable."""
        self.flush()
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    # ------------------------------------------------------------------
    # canonical output
    # ------------------------------------------------------------------
    def errors_by_suo(self) -> Dict[str, int]:
        """Per-SUO error tallies (only SUOs that reported any), sorted."""
        return {
            suo_id: tally.errors
            for suo_id, tally in sorted(self.per_suo.items())
            if tally.errors
        }

    def summary(self, per_suo: bool = False, samples: bool = False) -> Dict[str, Any]:
        """The canonical aggregate view: pure simulated-time state.

        Deliberately excludes anything wall-clock, so a fixed seed yields
        a byte-identical summary run over run.  With ``per_suo`` the full
        per-member ledger is included (one small dict per SUO).  With
        ``samples`` the latency block also carries the retained reservoir
        sample, which makes the summary *mergeable*: shard workers ship
        sampled summaries so :func:`merge_summaries` can re-sample one
        combined reservoir.
        """
        latency = self.latency.stats()
        if samples:
            latency["samples"] = self.latency.samples()
        result: Dict[str, Any] = {
            "time": round(self._clock(), 9),
            "suos": len(self.per_suo),
            "events_total": self.events_total,
            "events_by_kind": self.kinds.as_dict(),
            "window_rate": round(self.event_rate.rate(), 9),
            "latency": latency,
            "errors_total": self.kinds.get("error"),
            "errors_by_suo": self.errors_by_suo(),
            "recovery": self.recovery.summary(samples=samples),
            "diagnosis": self.diagnosis.summary(samples=samples),
        }
        if per_suo:
            result["per_suo"] = {
                suo_id: {
                    "inputs": tally.inputs,
                    "outputs": tally.outputs,
                    "stimuli": tally.stimuli,
                    "errors": tally.errors,
                    "other": tally.other,
                }
                for suo_id, tally in sorted(self.per_suo.items())
            }
        return result

    def digest(self) -> str:
        """SHA-256 over the canonical summary (bounded-memory witness)."""
        return summary_digest(self.summary(per_suo=True))


# ----------------------------------------------------------------------
# summary merging (sharded campaigns)
# ----------------------------------------------------------------------
def summary_digest(summary: Dict[str, Any]) -> str:
    """SHA-256 over a canonical JSON rendering of one summary dict."""
    canonical = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def mergeable_summary(summary: Dict[str, Any]) -> Dict[str, Any]:
    """The shard-invariant projection of a summary.

    Counters, per-SUO tallies, and the exact latency scalars (count,
    min, max) are *placement-invariant*: partitioning a fleet across
    shards and merging reproduces them bit for bit, because every
    member's event stream is keyed to ``(campaign seed, suo_id)`` and
    the quantities are order-independent sums over it.  Reservoir
    quantiles, means, and windowed rates are deliberately excluded —
    they depend on which samples a particular reservoir retained or on
    float summation order, so including them would make the digest
    depend on the execution backend rather than on the campaign.
    """
    latency = summary.get("latency", {})
    recovery = summary.get("recovery", {})
    ttr = recovery.get("ttr", {})
    diagnosis = summary.get("diagnosis", {})
    diagnosis_ttr = diagnosis.get("ttr", {})
    core: Dict[str, Any] = {
        "time": summary["time"],
        "suos": summary["suos"],
        "events_total": summary["events_total"],
        "events_by_kind": summary["events_by_kind"],
        "errors_total": summary["errors_total"],
        "errors_by_suo": summary["errors_by_suo"],
        "latency": {
            "count": latency.get("count", 0),
            "min": latency.get("min", 0.0),
            "max": latency.get("max", 0.0),
        },
        # Recovery counts and per-wave TTR count/min/max are exact sums
        # and extrema over per-member timelines, hence shard-invariant;
        # TTR means/quantiles are excluded like the latency ones.
        "recovery": {
            "recovered": recovery.get("recovered", 0),
            "actions": recovery.get("actions", {}),
            "ttr": {
                "count": ttr.get("count", 0),
                "min": ttr.get("min", 0.0),
                "max": ttr.get("max", 0.0),
            },
            "waves": {
                wave: {
                    "count": entry.get("count", 0),
                    "min": entry.get("min", 0.0),
                    "max": entry.get("max", 0.0),
                }
                for wave, entry in sorted(recovery.get("waves", {}).items())
            },
        },
        # Diagnosis outcomes are exact integer counts over per-member
        # timelines (each episode rebinds on exactly one shard); the
        # per-mode TTR count/min/max are extrema like the latency ones,
        # while accuracy/rate ratios and quantiles stay excluded.
        "diagnosis": {
            "rebinds": diagnosis.get("rebinds", {}),
            "suspects": diagnosis.get("suspects", {}),
            "rank_of_true": diagnosis.get("rank_of_true", {}),
            "hits": diagnosis.get("hits", 0),
            "misses": diagnosis.get("misses", 0),
            "ttr": {
                mode: {
                    "count": block.get("count", 0),
                    "min": block.get("min", 0.0),
                    "max": block.get("max", 0.0),
                }
                for mode, block in sorted(diagnosis_ttr.items())
            },
        },
    }
    if "per_suo" in summary:
        core["per_suo"] = summary["per_suo"]
    return core


def merge_digest(summary: Dict[str, Any]) -> str:
    """Backend-invariant digest: hash of :func:`mergeable_summary`.

    This is the witness a sharded campaign and its serial twin agree on
    (``CampaignReport.telemetry_digest``)."""
    return summary_digest(mergeable_summary(summary))


def _merge_dicts(parts: List[Dict[str, int]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return {key: merged[key] for key in sorted(merged)}


def _merge_stat_blocks(
    blocks: List[Dict[str, Any]], reservoir: int, digits: int
) -> Dict[str, Any]:
    """Merge N :meth:`ReservoirHistogram.stats` blocks into one.

    Count/min/max are exact; the mean is re-derived from count-weighted
    totals; quantiles come from a deterministic fixed-seed re-sample of
    the concatenated retained samples when available, else from
    count-weighted interpolation (see :func:`merge_summaries`).
    """
    counts = [block.get("count", 0) for block in blocks]
    total_count = sum(counts)
    merged: Dict[str, Any] = {"count": total_count}
    nonzero = [block for block in blocks if block.get("count", 0) > 0]
    if nonzero:
        total = sum(block.get("mean", 0.0) * block.get("count", 0) for block in nonzero)
        merged["mean"] = round(total / total_count, digits)
        merged["min"] = min(block.get("min", 0.0) for block in nonzero)
        merged["max"] = max(block.get("max", 0.0) for block in nonzero)
    else:
        merged.update({"mean": 0.0, "min": 0.0, "max": 0.0})
    if any("samples" in block for block in blocks):
        # Fixed-seed Algorithm R over the concatenated shard samples:
        # the same sketch FleetTelemetry keeps, so a single-summary
        # merge reproduces its quantiles exactly.
        resampler = ReservoirHistogram(capacity=reservoir, rng=random.Random(0))
        for block in blocks:
            for value in block.get("samples", ()):
                resampler.add(value)
        for name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            merged[name] = round(resampler.quantile(q), digits)
        merged["retained"] = resampler.retained
        merged["samples"] = resampler.samples(digits)
    else:
        for name in ("p50", "p90", "p99"):
            if total_count:
                weighted = sum(
                    block.get(name, 0.0) * block.get("count", 0) for block in nonzero
                )
                merged[name] = round(weighted / total_count, digits)
            else:
                merged[name] = 0.0
        merged["retained"] = sum(block.get("retained", 0) for block in blocks)
    return merged


def _merge_recovery(
    parts: List[Dict[str, Any]], reservoir: int, digits: int
) -> Dict[str, Any]:
    """Fold N per-shard recovery blocks into one (exact counts/extrema,
    re-derived means, deterministically re-sampled TTR quantiles)."""
    waves: Dict[str, Dict[str, Any]] = {}
    for part in parts:
        for wave, entry in part.get("waves", {}).items():
            merged = waves.get(wave)
            count = entry.get("count", 0)
            if count <= 0:
                continue
            if merged is None:
                waves[wave] = dict(entry)
            else:
                total = merged["count"] + count
                merged["min"] = min(merged["min"], entry.get("min", 0.0))
                merged["max"] = max(merged["max"], entry.get("max", 0.0))
                merged["mean"] = round(
                    (merged["mean"] * merged["count"]
                     + entry.get("mean", 0.0) * count) / total,
                    digits,
                )
                merged["count"] = total
    return {
        "recovered": sum(part.get("recovered", 0) for part in parts),
        "actions": _merge_dicts([part.get("actions", {}) for part in parts]),
        "ttr": _merge_stat_blocks(
            [part.get("ttr", {}) for part in parts], reservoir, digits
        ),
        "waves": {wave: waves[wave] for wave in sorted(waves)},
    }


def _merge_diagnosis(
    parts: List[Dict[str, Any]], reservoir: int, digits: int
) -> Dict[str, Any]:
    """Fold N per-shard diagnosis blocks into one (exact counters, exact
    per-mode TTR extrema, deterministically re-sampled quantiles, and
    accuracy/rate ratios re-derived from the merged counts)."""
    rebinds = _merge_dicts([part.get("rebinds", {}) for part in parts])
    ranks = _merge_dicts([part.get("rank_of_true", {}) for part in parts])
    ranked = sum(ranks.values())
    total = sum(rebinds.values())
    modes = sorted({mode for part in parts for mode in part.get("ttr", {})})
    return {
        "rebinds": rebinds,
        "suspects": _merge_dicts([part.get("suspects", {}) for part in parts]),
        "rank_of_true": ranks,
        "hits": sum(part.get("hits", 0) for part in parts),
        "misses": sum(part.get("misses", 0) for part in parts),
        "localization_accuracy": (
            round(ranks.get("1", 0) / ranked, digits) if ranked else 0.0
        ),
        "targeted_rebind_rate": (
            round(rebinds.get("targeted", 0) / total, digits) if total else 0.0
        ),
        "ttr": {
            mode: _merge_stat_blocks(
                [part.get("ttr", {}).get(mode, {}) for part in parts],
                reservoir,
                digits,
            )
            for mode in modes
        },
    }


def merge_summaries(
    summaries: List[Dict[str, Any]],
    reservoir: int = 512,
    digits: int = 9,
) -> Dict[str, Any]:
    """Pure companion to :meth:`FleetTelemetry.summary`: fold N shard
    summaries into one fleet summary.

    Merge rules, field by field:

    * counters and tallies (``events_total``, ``events_by_kind``,
      ``errors_*``, ``per_suo``, ``suos``) **sum** — exact, because each
      member lives on exactly one shard;
    * ``time`` takes the max (shards share the simulated clock, so for a
      completed campaign these are equal);
    * ``window_rate`` sums — the windowed-rate buckets of every shard
      align on *simulated* time, so rates over the same trailing window
      are additive (up to the 1e-9 canonical rounding);
    * ``latency`` (and ``recovery.ttr``) count/min/max are exact; the
      mean is re-derived from count-weighted totals; quantiles are
      re-computed from a reservoir **re-sampled deterministically**
      (fixed-seed Algorithm R) from the concatenated retained samples of
      the inputs — the same bounded sketch a serial run would produce,
      not a biased average of quantiles.  Inputs without ``samples``
      fall back to count-weighted quantile interpolation (deterministic,
      approximate);
    * ``recovery`` counts/actions and per-wave TTR count/min/max sum or
      take extrema exactly (each member recovers on exactly one shard);
      per-wave means are count-weighted;
    * ``diagnosis`` counters (rebind modes, suspects, rank-of-true,
      hits/misses) sum exactly; the accuracy and targeted-rate ratios
      are re-derived from the merged counts; per-mode TTR blocks merge
      like the latency block.

    Merging a single summary is the identity on counters, tallies, and
    quantiles, so serial campaigns route through the same code path.
    """
    if not summaries:
        raise ValueError("merge_summaries needs at least one summary")
    merged: Dict[str, Any] = {
        "time": max(s["time"] for s in summaries),
        "suos": sum(s["suos"] for s in summaries),
        "events_total": sum(s["events_total"] for s in summaries),
        "events_by_kind": _merge_dicts([s["events_by_kind"] for s in summaries]),
        "window_rate": round(sum(s["window_rate"] for s in summaries), digits),
        "latency": _merge_stat_blocks(
            [s.get("latency", {}) for s in summaries], reservoir, digits
        ),
        "errors_total": sum(s["errors_total"] for s in summaries),
        "errors_by_suo": _merge_dicts([s["errors_by_suo"] for s in summaries]),
        "recovery": _merge_recovery(
            [s.get("recovery", {}) for s in summaries], reservoir, digits
        ),
        "diagnosis": _merge_diagnosis(
            [s.get("diagnosis", {}) for s in summaries], reservoir, digits
        ),
    }
    if any("per_suo" in s for s in summaries):
        per_suo: Dict[str, Dict[str, int]] = {}
        for s in summaries:
            for suo_id, tally in s.get("per_suo", {}).items():
                if suo_id in per_suo:
                    for field in tally:
                        per_suo[suo_id][field] += tally[field]
                else:
                    per_suo[suo_id] = dict(tally)
        merged["per_suo"] = {key: per_suo[key] for key in sorted(per_suo)}
    return merged
