"""Greedy spec shrinking: from a failing candidate to a minimal repro.

A grammar-sampled failure is rarely committable as-is — six TVs, two
stray fault phases, a 58-second horizon, and a pile of incidental
profile noise around the one interaction that matters.  :func:`shrink`
reduces it the classic delta-debugging way: apply structural reduction
passes (drop phases, zero device kinds, halve counts, shorten the
horizon, simplify profiles, trim corrupt-packet lists), keep any
reduction under which the candidate *still fails with the same verdict
signature*, and iterate to a fixpoint.

The predicate re-runs the full oracle each probe, so a shrunk repro is
deterministic by construction: it is only accepted because it failed
the same way again.  Probes are capped (``max_attempts``) — shrinking
is a budgeted activity inside a fuzz run, not an unbounded search.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Tuple

from ..scenarios.spec import ScenarioSpec, UserProfile
from .oracle import CandidateResult, evaluate_candidate


@dataclass
class ShrinkResult:
    """The minimal spec plus the bookkeeping of how it got there."""

    spec: ScenarioSpec
    result: CandidateResult
    attempts: int
    accepted: int

    @property
    def signature(self) -> Tuple[str, ...]:
        return self.result.verdict.signature


def _reductions(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Candidate reductions, most aggressive first (a successful early
    cut saves every later probe the work)."""
    # drop whole fault phases
    for index in range(len(spec.phases)):
        yield replace(spec, phases=tuple(
            phase for i, phase in enumerate(spec.phases) if i != index
        ))
    # zero out whole device kinds
    for kind in ("tvs", "players", "printers"):
        if getattr(spec, kind):
            yield replace(spec, **{kind: 0})
    # halve device counts, then step to 1
    for kind in ("tvs", "players", "printers"):
        count = getattr(spec, kind)
        if count > 1:
            yield replace(spec, **{kind: count // 2})
            yield replace(spec, **{kind: 1})
    # widen the fault to the whole population (fraction 1.0 on a
    # 1-member kind is the canonical minimal form)
    for index, phase in enumerate(spec.phases):
        if phase.fraction < 1.0:
            yield replace(spec, phases=tuple(
                replace(p, fraction=1.0) if i == index else p
                for i, p in enumerate(spec.phases)
            ))
    # shorten the horizon (keep every phase inside it)
    latest = max((p.at for p in spec.phases), default=0.0)
    for factor in (0.5, 0.75):
        shorter = round(spec.duration * factor, 1)
        if shorter > latest + 1.0 and shorter >= 5.0:
            yield replace(spec, duration=shorter)
    # pull phases to the start
    for index, phase in enumerate(spec.phases):
        if phase.at > 1.0:
            yield replace(spec, phases=tuple(
                replace(p, at=1.0) if i == index else p
                for i, p in enumerate(spec.phases)
            ))
    # drop scheduled-repair windows and pulses
    for index, phase in enumerate(spec.phases):
        if phase.duration is not None or phase.pulse_every is not None:
            yield replace(spec, phases=tuple(
                replace(p, duration=None, pulse_every=None)
                if i == index else p
                for i, p in enumerate(spec.phases)
            ))
    # simplify user behaviour to the default profile
    if spec.profiles != (UserProfile("default"),):
        yield replace(spec, profiles=(UserProfile("default"),))
    # drop per-profile extras one at a time
    for index in range(len(spec.profiles)):
        if len(spec.profiles) > 1:
            yield replace(spec, profiles=tuple(
                p for i, p in enumerate(spec.profiles) if i != index
            ))
    # strip incidental drivers
    if spec.corrupt_player_packets:
        yield replace(spec, corrupt_player_packets=())
        if len(spec.corrupt_player_packets) > 1:
            yield replace(
                spec,
                corrupt_player_packets=spec.corrupt_player_packets[:1],
            )
    if spec.player_seek_every is not None:
        yield replace(spec, player_seek_every=None)
    if spec.printer_job_gap is not None:
        yield replace(spec, printer_job_gap=None)
    if spec.record_spans:
        yield replace(spec, record_spans=False)


def shrink(
    result: CandidateResult,
    max_attempts: int = 150,
    evaluate: Optional[Callable[[ScenarioSpec, int], CandidateResult]] = None,
) -> ShrinkResult:
    """Reduce ``result.spec`` while it keeps failing the same way.

    ``evaluate`` defaults to the full oracle (serial + shard-divergence
    run); tests inject cheaper predicates.
    """
    if not result.failing:
        raise ValueError("only failing candidates shrink")
    if evaluate is None:
        evaluate = evaluate_candidate
    target = result.verdict.signature
    current = result
    attempts = 0
    accepted = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _reductions(current.spec):
            if attempts >= max_attempts:
                break
            candidate = replace(
                candidate, name=f"{result.spec.name}-min"
            )
            try:
                candidate.validate()
            except ValueError:
                continue
            attempts += 1
            probe = evaluate(candidate, result.seed)
            if probe.failing and probe.verdict.signature == target:
                current = probe
                accepted += 1
                progress = True
                break  # restart passes from the smaller spec
    return ShrinkResult(
        spec=current.spec,
        result=current,
        attempts=attempts,
        accepted=accepted,
    )
