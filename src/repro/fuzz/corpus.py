"""The fuzz corpus: the coverage-novel frontier, persisted.

A candidate is admitted when it contributes something the corpus has
never seen — new coverage keys, or a new failure signature.  Everything
else is discarded: the corpus is the *frontier*, not a log.  Entries
persist in the same append-only :class:`~repro.obs.history.RunHistory`
SQLite store CI already caches between runs, keyed by
:func:`~repro.scenarios.spec_hash` (so re-finding a known spec is a
no-op), which is what lets a 30-second CI fuzz lane accumulate coverage
across weeks of builds instead of restarting from zero each time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..obs.history import RunHistory
from ..scenarios.spec import ScenarioSpec, spec_hash
from .coverage import CoverageMap
from .oracle import CandidateResult


@dataclass
class CorpusEntry:
    """One admitted candidate."""

    spec: ScenarioSpec
    seed: int
    origin: str  # "sample" | "mutate" | "shrunk"
    verdict: str
    signature: Tuple[str, ...]
    novel_keys: FrozenSet[str]
    coverage: FrozenSet[str]

    @property
    def hash(self) -> str:
        return spec_hash(self.spec)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "spec_hash": self.hash,
            "seed": self.seed,
            "origin": self.origin,
            "verdict": self.verdict,
            "signature": list(self.signature),
            "novel_keys": sorted(self.novel_keys),
            "coverage_size": len(self.coverage),
        }


@dataclass
class Corpus:
    """In-memory frontier over a :class:`CoverageMap`, with optional
    SQLite persistence."""

    coverage: CoverageMap = field(default_factory=CoverageMap)
    entries: List[CorpusEntry] = field(default_factory=list)
    signatures: set = field(default_factory=set)
    _hashes: set = field(default_factory=set)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, history: RunHistory) -> "Corpus":
        """Rebuild the frontier from a history store (seen coverage and
        signatures carry over; specs are re-materialized so mutation can
        keep working the old frontier)."""
        corpus = cls(coverage=CoverageMap(history.fuzz_coverage()))
        for row in reversed(history.fuzz_entries(limit=10_000)):
            spec = ScenarioSpec.from_json(json.loads(row["spec"]))
            entry = CorpusEntry(
                spec=spec,
                seed=int(row["seed"] or 0),
                origin=row["origin"] or "sample",
                verdict=row["verdict"] or "ok",
                signature=tuple((row["signature"] or "").split("|")) if row["signature"] else (),
                novel_keys=frozenset(row["novel_keys"]),
                coverage=frozenset(row["coverage"]),
            )
            corpus.entries.append(entry)
            corpus._hashes.add(row["spec_hash"])
            if entry.verdict != "ok":
                corpus.signatures.add(entry.signature)
        return corpus

    # ------------------------------------------------------------------
    def consider(self, result: CandidateResult, origin: str) -> Optional[CorpusEntry]:
        """Admit ``result`` if it advances the frontier; else None."""
        novel = self.coverage.novel(result.coverage)
        new_signature = (
            result.failing
            and result.verdict.signature not in self.signatures
        )
        if not novel and not new_signature:
            return None
        candidate_hash = spec_hash(result.spec)
        if candidate_hash in self._hashes:
            self.coverage.admit(result.coverage)
            return None
        self.coverage.admit(result.coverage)
        entry = CorpusEntry(
            spec=result.spec,
            seed=result.seed,
            origin=origin,
            verdict=result.verdict.kind,
            signature=result.verdict.signature if result.failing else (),
            novel_keys=novel,
            coverage=result.coverage,
        )
        self.entries.append(entry)
        self._hashes.add(candidate_hash)
        if result.failing:
            self.signatures.add(result.verdict.signature)
        return entry

    def persist(self, history: RunHistory, entries: List[CorpusEntry]) -> int:
        """Write ``entries`` to the store; returns how many were new."""
        written = 0
        for entry in entries:
            row_id = history.record_fuzz_entry(
                spec_hash=entry.hash,
                spec_json=entry.spec.canonical_json(),
                name=entry.spec.name,
                seed=entry.seed,
                origin=entry.origin,
                verdict=entry.verdict,
                signature="|".join(entry.signature),
                novel_keys=sorted(entry.novel_keys),
                coverage=sorted(entry.coverage),
            )
            if row_id is not None:
                written += 1
        return written

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        verdicts: Dict[str, int] = {}
        for entry in self.entries:
            verdicts[entry.verdict] = verdicts.get(entry.verdict, 0) + 1
        return {
            "entries": len(self.entries),
            "coverage_keys": len(self.coverage),
            "coverage_by_layer": self.coverage.by_layer(),
            "failure_signatures": len(self.signatures),
            "verdicts": dict(sorted(verdicts.items())),
        }
