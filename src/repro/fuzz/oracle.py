"""Pass/fail verdicts for fuzz candidates.

Fuzzing only works with an oracle sharper than "did it crash".  Ours is
the repo's own contract surface, checked in severity order:

``crash``
    Compiling or running the scenario raised — always a bug: the
    grammar only emits specs that pass :meth:`ScenarioSpec.validate`.

``digest_divergence``
    The serial run and a 2-shard inline partition of the *same* (spec,
    seed) disagree on the shard-invariant ``telemetry_digest`` — the
    determinism property CI gates on curated scenarios, here checked on
    scenarios nobody wrote.

``false_alarm``
    A monitored, fault-free member raised errors.  The paper's
    awareness monitors must stay silent on healthy SUOs.

``missed_detection``
    A marking fault afflicted a monitored member that finished the run
    with zero errors, even though the fault had at least
    ``detect_grace`` simulated seconds of exposure before the horizon
    (without the grace window, every late-horizon injection would
    "find" a trivial miss).

``unrecovered``
    A ``recovery=True`` phase armed a ladder that never completed —
    the episode's time-to-recover is non-finite at the horizon despite
    ``recover_grace`` seconds of exposure.

The verdict's :attr:`~Verdict.signature` (class + the fault pairs
involved) is the dedupe key: the corpus shrinks one candidate per
signature, not one per noisy instance.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..campaign.backends import ProcessShardBackend
from ..campaign.core import run_cell, run_cell_detailed
from ..campaign.report import CampaignReport
from ..scenarios.spec import ScenarioSpec
from .coverage import coverage_keys

#: Verdict classes, most severe first (evaluation stops at the first hit).
VERDICT_ORDER = (
    "crash",
    "digest_divergence",
    "false_alarm",
    "missed_detection",
    "unrecovered",
    "ok",
)

#: Minimum simulated exposure before an undetected fault counts as a
#: miss / an uncompleted ladder counts as unrecovered.
DETECT_GRACE = 15.0
RECOVER_GRACE = 40.0


@dataclass(frozen=True)
class Verdict:
    """One candidate's classification."""

    kind: str
    detail: str = ""
    #: Sorted ``(kind, fault)`` pairs implicated in the failure.
    fault_pairs: Tuple[Tuple[str, str], ...] = ()

    @property
    def failing(self) -> bool:
        return self.kind != "ok"

    @property
    def signature(self) -> Tuple[str, ...]:
        """The dedupe/shrink key: class + implicated fault pairs."""
        return (self.kind,) + tuple(
            f"{kind}:{fault}" for kind, fault in self.fault_pairs
        )

    def describe(self) -> str:
        pairs = ", ".join(f"{k}:{f}" for k, f in self.fault_pairs)
        body = self.detail if self.detail else self.kind
        return f"{self.kind}({pairs}): {body}" if pairs else f"{self.kind}: {body}"


@dataclass
class CandidateResult:
    """Everything the engine needs about one evaluated candidate."""

    spec: ScenarioSpec
    seed: int
    verdict: Verdict
    coverage: FrozenSet[str] = frozenset()
    report: Optional[CampaignReport] = None

    @property
    def failing(self) -> bool:
        return self.verdict.failing


def _exposure(spec: ScenarioSpec, phase) -> float:
    """Simulated seconds the phase's fault is live before the horizon."""
    end = spec.duration
    if phase.duration is not None:
        end = min(end, phase.at + phase.duration)
    return max(0.0, end - phase.at)


def classify(
    spec: ScenarioSpec,
    report: CampaignReport,
    compiled,
    shard_digest: Optional[str] = None,
    shard_span_digest: Optional[str] = None,
    detect_grace: float = DETECT_GRACE,
    recover_grace: float = RECOVER_GRACE,
) -> Verdict:
    """Apply the non-crash oracles in severity order."""
    if shard_digest is not None and shard_digest != report.telemetry_digest:
        return Verdict(
            kind="digest_divergence",
            detail=(
                f"serial {report.telemetry_digest[:12]} != "
                f"sharded {shard_digest[:12]}"
            ),
            fault_pairs=tuple(sorted(
                (p.kind, p.fault) for p in spec.phases
            )),
        )
    if (
        shard_span_digest is not None
        and shard_span_digest != report.span_digest
    ):
        return Verdict(
            kind="digest_divergence",
            detail=(
                f"span forest serial {report.span_digest[:12]} != "
                f"sharded {shard_span_digest[:12]}"
            ),
            fault_pairs=tuple(sorted(
                (p.kind, p.fault) for p in spec.phases
            )),
        )
    if report.false_alarms:
        return Verdict(
            kind="false_alarm",
            detail=f"clean members raised errors: {sorted(report.false_alarms)}",
            fault_pairs=tuple(sorted(
                {(p.kind, p.fault) for p in spec.phases}
            )),
        )
    detected = set(report.detected)
    missed_pairs = set()
    for index, phase in enumerate(spec.phases):
        if not phase.marks_faulty:
            continue
        if _exposure(spec, phase) < detect_grace:
            continue
        # The plan's per-phase target list is the attribution ground
        # truth — misses must not bleed onto other faults of the same
        # kind.  Unmonitored members never enter detection accounting.
        targets = {
            suo_id
            for suo_id in compiled.plan.phase_targets[index]
            if compiled.fleet.members[suo_id].monitor is not None
        }
        if targets - detected:
            missed_pairs.add((phase.kind, phase.fault))
    if missed_pairs:
        return Verdict(
            kind="missed_detection",
            detail="faulty members finished with zero monitor errors",
            fault_pairs=tuple(sorted(missed_pairs)),
        )
    unrecovered_pairs = set()
    for index, phase in enumerate(spec.phases):
        if not phase.recovery:
            continue
        for suo_id in compiled.plan.phase_targets[index]:
            harness = compiled.recoveries.get(suo_id)
            if harness is None or harness.completed:
                continue
            member = compiled.fleet.members[suo_id]
            errors = member.monitor.errors if member.monitor else []
            if not errors:
                continue  # never detected → that's a miss, not a hang
            # The ladder's clock starts at first detection; only call it
            # hung when it had real time to walk the rungs.
            if spec.duration - errors[0].time >= recover_grace:
                unrecovered_pairs.add((phase.kind, phase.fault))
    if unrecovered_pairs:
        return Verdict(
            kind="unrecovered",
            detail="armed recovery ladder never completed (non-finite TTR)",
            fault_pairs=tuple(sorted(unrecovered_pairs)),
        )
    return Verdict(kind="ok")


def evaluate_candidate(
    spec: ScenarioSpec,
    seed: int,
    check_divergence: bool = True,
    detect_grace: float = DETECT_GRACE,
    recover_grace: float = RECOVER_GRACE,
) -> CandidateResult:
    """Run one candidate through the campaign surface and classify it.

    With ``check_divergence`` the candidate also runs under a 2-shard
    inline partition (same processes-free merge path CI gates) and the
    two telemetry digests must agree — this is how the fuzzer hunts
    placement-dependence bugs on scenarios the curated suite never
    tries.
    """
    try:
        cell = run_cell_detailed(spec, seed)
        report, compiled = cell.report, cell.compiled
        shard_digest = None
        shard_span_digest = None
        if check_divergence and spec.members >= 2:
            sharded = run_cell(
                spec, seed, backend=ProcessShardBackend(shards=2, inline=True)
            )
            shard_digest = sharded.telemetry_digest
            if spec.record_spans:
                shard_span_digest = sharded.span_digest
    except Exception as exc:  # noqa: BLE001 — any raise is the finding
        return CandidateResult(
            spec=spec,
            seed=seed,
            verdict=Verdict(
                kind="crash",
                detail="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
                fault_pairs=tuple(sorted(
                    {(p.kind, p.fault) for p in spec.phases}
                )),
            ),
        )
    verdict = classify(
        spec, report, compiled,
        shard_digest=shard_digest,
        shard_span_digest=shard_span_digest,
        detect_grace=detect_grace,
        recover_grace=recover_grace,
    )
    return CandidateResult(
        spec=spec,
        seed=seed,
        verdict=verdict,
        coverage=coverage_keys(spec, report, compiled),
        report=report,
    )
