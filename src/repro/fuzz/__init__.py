"""Coverage-guided scenario fuzzing: scenarios nobody wrote.

The scenario library (:mod:`repro.scenarios.library`) encodes the
campaigns we *thought* to write; this package searches the spec space
for the ones we did not:

* :mod:`repro.fuzz.grammar`  — samples and mutates valid
  :class:`~repro.scenarios.ScenarioSpec`\\ s (device mixes, Markov-chain
  user behaviour, fault schedules over every known fault);
* :mod:`repro.fuzz.coverage` — the novelty signal: spec-model
  transitions fired, faults/components injected, detection and
  recovery outcomes;
* :mod:`repro.fuzz.oracle`   — verdicts (crash, digest divergence,
  false alarm, missed detection, unrecovered) with dedupe signatures;
* :mod:`repro.fuzz.corpus`   — the coverage-novel frontier, persisted
  in the :class:`~repro.obs.history.RunHistory` store CI caches;
* :mod:`repro.fuzz.shrink`   — greedy reduction of failing candidates
  to minimal deterministic repros (committable as library scenarios);
* :mod:`repro.fuzz.engine`   — the deterministic fuzz loop;
* ``python -m repro.fuzz``   — run / shrink / corpus / export-scenario.

Quick start::

    from repro.fuzz import FuzzConfig, Fuzzer

    report = Fuzzer(FuzzConfig(seed=1, candidates=25)).run()
    print(report.coverage_keys, [f.as_dict() for f in report.findings])
"""

from .corpus import Corpus, CorpusEntry
from .coverage import CoverageMap, coverage_keys
from .engine import Finding, FuzzConfig, FuzzReport, Fuzzer
from .grammar import OP_VOCABULARY, ScenarioGrammar, markov_walk
from .oracle import (
    CandidateResult,
    DETECT_GRACE,
    VERDICT_ORDER,
    Verdict,
    classify,
    evaluate_candidate,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "CandidateResult",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "DETECT_GRACE",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "Fuzzer",
    "OP_VOCABULARY",
    "ScenarioGrammar",
    "ShrinkResult",
    "VERDICT_ORDER",
    "Verdict",
    "classify",
    "coverage_keys",
    "evaluate_candidate",
    "markov_walk",
    "shrink",
]
