"""The scenario grammar: sampling and mutating :class:`ScenarioSpec`s.

The 13-scenario library is hand-authored; this module is the generative
complement.  :class:`ScenarioGrammar` draws complete, *valid* specs from
a seeded stream:

* **device mixes** — small fleets (throughput: a fuzz candidate should
  run in well under a second) spanning TVs, players, and printers;
* **user profiles** — key sequences generated as Markov chains over the
  existing profile op vocabulary (the keys the library's zapper /
  couch / reader profiles press), emitted either as a weighted key pool
  for :class:`~repro.tv.remote.RandomUser` or, occasionally, as a
  deterministic ``script``;
* **fault schedules** — :class:`FaultPhase` entries over every
  ``(kind, fault)`` in :data:`~repro.scenarios.spec.KNOWN_FAULTS`,
  including windowed repairs, pulsed floods, recovery-ladder phases,
  and the edge positions (``at=0``, late-horizon) hand authors avoid.

Every draw is a pure function of ``(grammar seed, candidate index)``, so
a fuzz run replays identically — the engine's determinism gate depends
on it.  :meth:`mutate` applies one seeded structural edit to an existing
spec (the corpus-frontier half of coverage-guided search).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..scenarios.spec import (
    KNOWN_FAULTS,
    LOAD_FAULTS,
    FaultPhase,
    ScenarioSpec,
    UserProfile,
)
from ..sim.random import RandomStreams

#: The op vocabulary the library's hand-written profiles draw from —
#: the Markov chains walk over exactly this alphabet, so generated
#: behaviour stays inside the remote's real key space.
OP_VOCABULARY: Tuple[str, ...] = (
    "power", "ch_up", "ch_down", "vol_up", "vol_down", "mute",
    "ttx", "menu", "back", "dual", "swap", "epg", "ok", "sleep",
    "digit1", "digit5", "digit9",
)

#: Faults a ``recovery=True`` phase may carry: marking faults only
#: (load faults are never detected, so a ladder could not repair them).
RECOVERABLE_FAULTS: Tuple[Tuple[str, str], ...] = tuple(
    sorted(KNOWN_FAULTS - LOAD_FAULTS)
)

_ALL_FAULTS: Tuple[Tuple[str, str], ...] = tuple(sorted(KNOWN_FAULTS))


def _markov_matrix(
    rng: random.Random, vocabulary: Sequence[str]
) -> dict:
    """A sparse row-stochastic successor table: each op gets 2-4 likely
    successors with seeded weights (the chain structure that makes a
    generated session look like a user, not white noise)."""
    table = {}
    for op in vocabulary:
        fanout = rng.randint(2, 4)
        successors = rng.sample(list(vocabulary), fanout)
        weights = [rng.uniform(0.5, 2.0) for _ in successors]
        table[op] = (successors, weights)
    return table


def markov_walk(
    rng: random.Random,
    length: int,
    vocabulary: Sequence[str] = OP_VOCABULARY,
    start: Optional[str] = None,
) -> List[str]:
    """One op sequence from a freshly sampled Markov chain."""
    table = _markov_matrix(rng, vocabulary)
    op = start if start is not None else rng.choice(list(vocabulary))
    walk = [op]
    for _ in range(length - 1):
        successors, weights = table[op]
        op = rng.choices(successors, weights=weights)[0]
        walk.append(op)
    return walk


class ScenarioGrammar:
    """Seeded sampler over the scenario space.

    ``sample(index)`` is index-addressed (stream per candidate), so
    candidate N is the same spec whether or not candidates 0..N-1 were
    evaluated — shrinking and corpus replay never perturb the draw.
    """

    #: Candidate horizons stay short: coverage novelty, not soak length,
    #: is the signal, and CI budgets are seconds.
    DURATION_RANGE = (20.0, 60.0)
    MAX_PHASES = 3

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams = RandomStreams(seed)

    # ------------------------------------------------------------------
    def _rng(self, role: str, index: int) -> random.Random:
        return self._streams.stream(f"fuzz.{role}.{index}")

    def sample(self, index: int) -> ScenarioSpec:
        """Draw candidate ``index`` (always a valid spec)."""
        rng = self._rng("sample", index)
        duration = rng.uniform(*self.DURATION_RANGE)
        # Device mix: at least one member; bias toward small mixed fleets.
        tvs = rng.choice((0, 1, 2, 3, 4, 6))
        players = rng.choice((0, 0, 1, 2, 3))
        printers = rng.choice((0, 0, 1, 2))
        if tvs + players + printers == 0:
            tvs = rng.randint(1, 4)
        profiles = self._profiles(rng) if tvs else (UserProfile("default"),)
        phases = self._phases(rng, duration, tvs, players, printers)
        spec = ScenarioSpec(
            name=f"fuzz-{self.seed}-{index}",
            description="grammar-sampled scenario (repro.fuzz)",
            duration=round(duration, 1),
            tvs=tvs,
            players=players,
            printers=printers,
            profiles=profiles,
            phases=phases,
            player_seek_every=(
                round(rng.uniform(2.0, 8.0), 1)
                if players and rng.random() < 0.7 else None
            ),
            player_packets=200,
            corrupt_player_packets=self._corrupt_packets(rng, players),
            printer_job_gap=(
                round(rng.uniform(5.0, 25.0), 1)
                if printers and rng.random() < 0.8 else None
            ),
            printer_pages=(1, rng.randint(1, 6)),
            # Some candidates fuzz the causal-span layer too: the span
            # forest digest is a shard-invariance witness just like the
            # telemetry digest, so it deserves adversarial scenarios.
            record_spans=bool(phases) and rng.random() < 0.25,
        )
        spec.validate()
        return spec

    # ------------------------------------------------------------------
    def _profiles(self, rng: random.Random) -> Tuple[UserProfile, ...]:
        count = rng.choice((1, 1, 2))
        profiles = []
        for slot in range(count):
            mean_gap = round(rng.uniform(0.8, 12.0), 2)
            if rng.random() < 0.15:
                # A deterministic scripted session: a true Markov walk,
                # anchored by the mandatory power-on.
                script = ["power"] + markov_walk(
                    rng, rng.randint(6, 16)
                )
                profiles.append(UserProfile(
                    name=f"script-{slot}",
                    mean_gap=max(mean_gap, 1.0),
                    script=tuple(script),
                ))
            else:
                # A weighted key pool: the walk's visit frequencies
                # become press probabilities under RandomUser.
                pool = markov_walk(rng, rng.randint(4, 14))
                profiles.append(UserProfile(
                    name=f"markov-{slot}",
                    mean_gap=mean_gap,
                    keys=tuple(pool),
                    weight=round(rng.uniform(0.5, 2.0), 2),
                ))
        return tuple(profiles)

    def _corrupt_packets(
        self, rng: random.Random, players: int
    ) -> Tuple[int, ...]:
        if not players or rng.random() < 0.4:
            return ()
        clusters = rng.randint(1, 4)
        packets: List[int] = []
        for _ in range(clusters):
            start = rng.randint(0, 180)
            packets.extend(range(start, start + rng.randint(1, 3)))
        return tuple(sorted(set(packets)))

    def _phases(
        self,
        rng: random.Random,
        duration: float,
        tvs: int,
        players: int,
        printers: int,
    ) -> Tuple[FaultPhase, ...]:
        present = {
            kind
            for kind, count in (
                ("tv", tvs), ("player", players), ("printer", printers)
            )
            if count
        }
        eligible = [
            (kind, fault) for kind, fault in _ALL_FAULTS if kind in present
        ]
        if not eligible:
            return ()
        phases = []
        for _ in range(rng.randint(0, self.MAX_PHASES)):
            kind, fault = rng.choice(eligible)
            # Edge positions on purpose: t=0 and the late horizon are
            # exactly where hand-written schedules never put a fault.
            roll = rng.random()
            if roll < 0.1:
                at = 0.0
            elif roll < 0.2:
                at = round(duration * rng.uniform(0.85, 0.99), 1)
            else:
                at = round(rng.uniform(0.0, duration * 0.8), 1)
            if at >= duration:
                at = round(duration * 0.8, 1)
            fraction = round(rng.uniform(0.2, 1.0), 2)
            recovery = (
                (kind, fault) in RECOVERABLE_FAULTS and rng.random() < 0.3
            )
            window: Optional[float] = None
            pulse: Optional[float] = None
            if not recovery and rng.random() < 0.4:
                window = round(rng.uniform(5.0, duration - at + 1.0), 1)
                if rng.random() < 0.3:
                    pulse = round(rng.uniform(2.0, max(2.5, window / 2)), 1)
            phases.append(FaultPhase(
                fault=fault,
                at=at,
                kind=kind,
                fraction=fraction,
                duration=window,
                pulse_every=pulse,
                recovery=recovery,
            ))
        return tuple(phases)

    # ------------------------------------------------------------------
    # mutation (the corpus-frontier half of the search)
    # ------------------------------------------------------------------
    def mutate(self, spec: ScenarioSpec, index: int) -> ScenarioSpec:
        """One seeded structural edit of ``spec`` (always valid; falls
        back to a fresh sample if the edit dead-ends)."""
        rng = self._rng("mutate", index)
        for _ in range(8):  # a few tries: some edits invalidate the spec
            candidate = self._mutate_once(spec, rng, index)
            if candidate is None:
                continue
            try:
                candidate.validate()
            except ValueError:
                continue
            return candidate
        return self.sample(index)

    def _mutate_once(
        self, spec: ScenarioSpec, rng: random.Random, index: int
    ) -> Optional[ScenarioSpec]:
        name = f"fuzz-{self.seed}-{index}m"
        op = rng.choice((
            "add_phase", "drop_phase", "shift_phase", "widen_fraction",
            "device_mix", "reprofile", "duration",
        ))
        if op == "add_phase":
            extra = self._phases(
                rng, spec.duration, spec.tvs, spec.players, spec.printers
            )
            if not extra:
                return None
            return replace(spec, name=name, phases=spec.phases + extra[:1])
        if op == "drop_phase":
            if not spec.phases:
                return None
            victim = rng.randrange(len(spec.phases))
            return replace(spec, name=name, phases=tuple(
                phase for i, phase in enumerate(spec.phases) if i != victim
            ))
        if op == "shift_phase":
            if not spec.phases:
                return None
            slot = rng.randrange(len(spec.phases))
            shifted = replace(
                spec.phases[slot],
                at=round(rng.uniform(0.0, spec.duration * 0.9), 1),
            )
            return replace(spec, name=name, phases=tuple(
                shifted if i == slot else phase
                for i, phase in enumerate(spec.phases)
            ))
        if op == "widen_fraction":
            if not spec.phases:
                return None
            slot = rng.randrange(len(spec.phases))
            widened = replace(
                spec.phases[slot], fraction=round(rng.uniform(0.5, 1.0), 2)
            )
            return replace(spec, name=name, phases=tuple(
                widened if i == slot else phase
                for i, phase in enumerate(spec.phases)
            ))
        if op == "device_mix":
            kind = rng.choice(("tvs", "players", "printers"))
            delta = rng.choice((-2, -1, 1, 2))
            counts = {
                "tvs": spec.tvs, "players": spec.players,
                "printers": spec.printers,
            }
            counts[kind] = max(0, counts[kind] + delta)
            return replace(spec, name=name, **counts)
        if op == "reprofile":
            if not spec.tvs:
                return None
            return replace(spec, name=name, profiles=self._profiles(rng))
        # duration
        factor = rng.choice((0.5, 0.75, 1.5))
        return replace(
            spec, name=name, duration=round(spec.duration * factor, 1)
        )
