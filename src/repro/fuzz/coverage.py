"""The fuzzer's coverage signal: what one campaign actually exercised.

A candidate earns its place in the corpus by *novelty*, and novelty
needs a coverage alphabet.  :func:`coverage_keys` extracts one flat
string-key set from the artifacts a finished
:func:`~repro.campaign.core.run_cell_detailed` call hands back, across
three layers:

``model:{kind}:{transition}``
    Spec-model transitions the live awareness monitors fired — read off
    ``Transition.fire_count`` (maintained by ``Machine._fire`` anyway,
    so the signal costs the hot path nothing).  This is the same
    transition universe :meth:`repro.statemachine.testgen.TestGenerator.
    transition_names` explores, which makes the test generator the
    oracle for what the fuzzer has left uncovered.

``fault:{kind}:{fault}`` / ``component:{component}``
    Which of the :data:`~repro.scenarios.spec.KNOWN_FAULTS` entries the
    schedule injected, and (via
    :data:`~repro.diagnosis.components.FAULT_COMPONENTS`) which model
    components those implicate.

``outcome:...``
    Detection / false-alarm / recovery results from the fleet accounting
    — so a candidate that makes a monitor *miss* is novel even when its
    transition footprint is not.

:class:`CoverageMap` accumulates the global set and answers the only
question the corpus asks: "does this candidate add keys we have never
seen?".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple

from ..campaign.report import CampaignReport
from ..diagnosis.components import FAULT_COMPONENTS
from ..scenarios.compile import CompiledScenario
from ..scenarios.spec import ScenarioSpec


def model_coverage(compiled: CompiledScenario) -> Set[str]:
    """``model:{kind}:{transition}`` keys for every monitor transition
    that fired at least once during the run."""
    keys: Set[str] = set()
    for member in compiled.fleet.members.values():
        if member.monitor is None:
            continue
        machine = member.monitor.executor.machine
        for transition in machine.all_transitions():
            if transition.fire_count > 0:
                keys.add(f"model:{member.kind}:{transition.name}")
    return keys


def fault_coverage(spec: ScenarioSpec) -> Set[str]:
    """Fault- and component-space keys from the injection schedule."""
    keys: Set[str] = set()
    for phase in spec.phases:
        keys.add(f"fault:{phase.kind}:{phase.fault}")
        component = FAULT_COMPONENTS.get((phase.kind, phase.fault))
        if component is not None:
            keys.add(f"component:{component}")
        if phase.recovery:
            keys.add(f"fault-mode:recovery:{phase.kind}:{phase.fault}")
        elif phase.pulse_every is not None:
            keys.add(f"fault-mode:pulsed:{phase.kind}:{phase.fault}")
        elif phase.duration is not None:
            keys.add(f"fault-mode:windowed:{phase.kind}:{phase.fault}")
    return keys


def outcome_coverage(
    spec: ScenarioSpec,
    report: CampaignReport,
    compiled: CompiledScenario,
) -> Set[str]:
    """Detection / alarm / recovery outcome keys.

    Detection outcomes resolve per *fault pair*, not per member: the
    interesting novelty is "silent_jam went undetected somewhere", not
    which of forty printers it was.
    """
    keys: Set[str] = set()
    detected = set(report.detected)
    by_pair: Dict[Tuple[str, str], Set[str]] = {}
    for index, phase in enumerate(spec.phases):
        if not phase.marks_faulty:
            continue
        for suo_id in compiled.plan.phase_targets[index]:
            if compiled.fleet.members[suo_id].monitor is not None:
                by_pair.setdefault(
                    (phase.kind, phase.fault), set()
                ).add(suo_id)
    for (kind, fault), suo_ids in sorted(by_pair.items()):
        if suo_ids & detected:
            keys.add(f"outcome:detected:{kind}:{fault}")
        if suo_ids - detected:
            keys.add(f"outcome:missed:{kind}:{fault}")
    if report.false_alarms:
        keys.add("outcome:false_alarm")
    for recovery in compiled.recoveries.values():
        if recovery.completed:
            for wave, _ttr in recovery.completed:
                keys.add(f"outcome:recovered:wave{wave}")
        elif recovery.armed:
            keys.add("outcome:recovery_pending")
    return keys


def coverage_keys(
    spec: ScenarioSpec,
    report: CampaignReport,
    compiled: CompiledScenario,
) -> FrozenSet[str]:
    """The candidate's full coverage footprint (one flat key set)."""
    keys = model_coverage(compiled)
    keys |= fault_coverage(spec)
    keys |= outcome_coverage(spec, report, compiled)
    return frozenset(keys)


class CoverageMap:
    """Accumulated global coverage across a fuzz run (and, loaded from
    the corpus store, across every past run)."""

    def __init__(self, seen: Iterable[str] = ()) -> None:
        self._seen: Set[str] = set(seen)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, key: str) -> bool:
        return key in self._seen

    @property
    def keys(self) -> FrozenSet[str]:
        return frozenset(self._seen)

    def novel(self, keys: Iterable[str]) -> FrozenSet[str]:
        """The subset of ``keys`` never seen before (empty → boring)."""
        return frozenset(keys) - frozenset(self._seen)

    def admit(self, keys: Iterable[str]) -> FrozenSet[str]:
        """Record ``keys``; returns the novel subset they contributed."""
        fresh = self.novel(keys)
        self._seen.update(fresh)
        return fresh

    def by_layer(self) -> Dict[str, int]:
        """Seen-key counts per layer prefix (the ``corpus stats`` view)."""
        counts: Dict[str, int] = {}
        for key in self._seen:
            layer = key.split(":", 1)[0]
            counts[layer] = counts.get(layer, 0) + 1
        return dict(sorted(counts.items()))
