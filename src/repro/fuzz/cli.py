"""``python -m repro.fuzz`` — run, shrink, corpus, export-scenario.

The fuzzing subsystem's human/CI surface.  The corpus persists in the
same append-only SQLite store ``python -m repro.obs`` uses (``--db``,
default ``BENCH_history.sqlite``), so CI's cached history file carries
fuzz coverage forward between builds:

    python -m repro.fuzz run --seed 1 --candidates 40
    python -m repro.fuzz run --budget 30 --ci       # time-boxed CI lane
    python -m repro.fuzz shrink --spec repro.json --seed 0
    python -m repro.fuzz corpus
    python -m repro.fuzz export-scenario --hash <spec-hash> --out spec.json

``run --ci`` exits nonzero when the runtime itself is implicated: a
failing candidate that could not be shrunk to a stable repro (shrinking
re-verifies the failure, so an unshrinkable one is nondeterministic), a
``crash`` verdict, or a serial-vs-sharded ``digest_divergence``.
Reproducible detection-gap findings (``missed_detection`` & co.) are
reported and persisted but do not fail the lane — they are the fuzzer's
*output*, to be triaged and pinned, not an infrastructure failure.

``run --known DIR`` first re-evaluates the pinned repro specs in DIR
(``benchmarks/fuzz_known/`` in CI) and seeds their failure signatures
into the corpus, so a cold-cache lane flags only *novel* failure
classes — the already-pinned ones stay documented, not re-reported.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional

from ..obs.history import RunHistory
from ..scenarios.spec import ScenarioSpec, spec_hash
from .corpus import Corpus
from .engine import FuzzConfig, Fuzzer
from .oracle import evaluate_candidate
from .shrink import shrink

DEFAULT_DB = "BENCH_history.sqlite"


def _load_corpus(db: Optional[str]) -> tuple:
    """(corpus, history): fresh when --no-db, else loaded from the store."""
    if db is None:
        return Corpus(), None
    history = RunHistory(db)
    return Corpus.load(history), history


# ----------------------------------------------------------------------
def _seed_known(corpus: Corpus, directory: str, campaign_seed: int) -> None:
    """Re-evaluate pinned repro specs and seed their signatures.

    Each ``*.json`` spec in ``directory`` is a known, already-pinned
    finding (see ``benchmarks/fuzz_known/``).  Re-running it here is
    self-verifying: a spec that still fails registers its signature so
    the fuzz lane only flags *novel* failure classes; a spec that has
    been fixed registers nothing, so a reappearance of its signature
    fails CI again — exactly the regression semantics a pin should have.
    """
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(json.load(handle))
        spec.validate()
        result = evaluate_candidate(spec, campaign_seed, check_divergence=False)
        corpus.consider(result, origin="known")
        print(
            f"  known: {os.path.basename(path)} "
            f"[{result.verdict.kind}] {'|'.join(result.verdict.signature)}"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    corpus, history = _load_corpus(None if args.no_db else args.db)
    if args.known:
        _seed_known(corpus, args.known, args.campaign_seed)
    config = FuzzConfig(
        seed=args.seed,
        candidates=args.candidates,
        budget_seconds=args.budget,
        campaign_seed=args.campaign_seed,
        check_divergence=not args.no_divergence_check,
        shrink_attempts=args.shrink_attempts,
    )
    try:
        report = Fuzzer(config, corpus=corpus, history=history).run()
    finally:
        if history is not None:
            history.close()
    print(
        f"fuzz seed {config.seed}: {report.evaluated} candidates in "
        f"{report.wall_seconds:.1f}s ({report.candidates_per_sec:.1f}/s, "
        f"stopped by {report.stopped_by})"
    )
    print(
        f"  coverage: {report.coverage_keys} keys "
        f"{report.coverage_by_layer}"
    )
    print(f"  admitted {len(report.admitted)} corpus entries")
    for finding in report.findings:
        data = finding.as_dict()
        print(
            f"  FINDING [{data['verdict']}] "
            f"{'|'.join(data['signature'])}: "
            f"{data['original_members']} -> {data['shrunk_members']} "
            f"members after {data['shrink_attempts']} shrink probes "
            f"(hash {data['spec_hash'][:12]})"
        )
        print(f"    {data['detail']}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.out}")
    if args.ci:
        # The lane turns red only for runtime-level breakage: a finding
        # that did not re-verify under shrinking (nondeterministic), a
        # crash, or a serial-vs-sharded digest divergence.  Detection
        # gaps (missed_detection & co.) are the fuzzer doing its job:
        # they land in the corpus and the report for triage and pinning
        # (``--known``), but an open research gap must not wedge CI.
        unshrunk = [
            finding for finding in report.findings
            if finding.shrunk.result.verdict.signature
            != finding.original.verdict.signature
        ]
        hard = [
            finding for finding in report.findings
            if finding.original.verdict.kind in ("crash", "digest_divergence")
        ]
        soft = [
            finding for finding in report.findings
            if finding not in unshrunk and finding not in hard
        ]
        if unshrunk:
            print(
                f"CI: {len(unshrunk)} finding(s) did not re-verify under "
                "shrinking — nondeterministic failure"
            )
        if hard:
            kinds = sorted({f.original.verdict.kind for f in hard})
            print(
                f"CI: {len(hard)} {'/'.join(kinds)} finding(s) — the "
                "campaign runtime itself is broken"
            )
        if soft:
            print(
                f"CI: {len(soft)} reproducible detection-gap finding(s) "
                "recorded in the corpus — triage with `python -m "
                "repro.fuzz corpus --failing`, pin via --known"
            )
        if unshrunk or hard:
            return 1
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = ScenarioSpec.from_json(json.load(handle))
    spec.validate()
    result = evaluate_candidate(
        spec, args.seed, check_divergence=not args.no_divergence_check
    )
    if not result.failing:
        print(f"{spec.name}: verdict ok — nothing to shrink")
        return 0
    print(f"{spec.name}: {result.verdict.describe()}")
    shrunk = shrink(result, max_attempts=args.shrink_attempts)
    print(
        f"shrunk {spec.members} -> {shrunk.spec.members} members, "
        f"{spec.duration:.0f}s -> {shrunk.spec.duration:.0f}s horizon "
        f"({shrunk.accepted}/{shrunk.attempts} probes accepted)"
    )
    out = args.out or (args.spec + ".min")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(shrunk.spec.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote minimal repro to {out} (hash {spec_hash(shrunk.spec)[:12]})")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    corpus, history = _load_corpus(args.db)
    try:
        stats = corpus.stats()
        print(
            f"{args.db}: {stats['entries']} corpus entries, "
            f"{stats['coverage_keys']} coverage keys, "
            f"{stats['failure_signatures']} failure signatures"
        )
        print(f"  by layer: {stats['coverage_by_layer']}")
        print(f"  verdicts: {stats['verdicts']}")
        if args.failing:
            for entry in corpus.entries:
                if entry.verdict != "ok":
                    print(
                        f"  {entry.hash[:12]} [{entry.verdict}] "
                        f"{'|'.join(entry.signature)} "
                        f"({entry.spec.members} members, origin "
                        f"{entry.origin})"
                    )
    finally:
        if history is not None:
            history.close()
    return 0


def _cmd_export_scenario(args: argparse.Namespace) -> int:
    with RunHistory(args.db) as history:
        entries = history.fuzz_entries(limit=10_000)
    matches = [
        row for row in entries if row["spec_hash"].startswith(args.hash)
    ]
    if not matches:
        print(f"no corpus entry with hash prefix {args.hash!r} in {args.db}")
        return 1
    if len(matches) > 1:
        print(f"hash prefix {args.hash!r} is ambiguous ({len(matches)} rows)")
        return 1
    spec = ScenarioSpec.from_json(json.loads(matches[0]["spec"]))
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(spec.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {spec.name} ({spec.members} members, verdict "
        f"{matches[0]['verdict']}) to {args.out}"
    )
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_db(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db", default=DEFAULT_DB,
            help=f"corpus/history SQLite file (default: {DEFAULT_DB})",
        )

    run = commands.add_parser(
        "run", help="fuzz: sample, evaluate, admit, shrink"
    )
    add_db(run)
    run.add_argument("--seed", type=int, default=0, help="grammar seed")
    run.add_argument(
        "--candidates", type=int, default=50,
        help="candidate budget (the determinism key)",
    )
    run.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap — stops early for CI time-boxing",
    )
    run.add_argument("--campaign-seed", type=int, default=0)
    run.add_argument(
        "--no-db", action="store_true",
        help="in-memory corpus only (determinism comparisons)",
    )
    run.add_argument(
        "--no-divergence-check", action="store_true",
        help="skip the 2-shard digest comparison per candidate",
    )
    run.add_argument("--shrink-attempts", type=int, default=150)
    run.add_argument(
        "--known", metavar="DIR",
        help="pre-seed the corpus from pinned repro specs (*.json) so "
             "already-known failure signatures are not re-flagged",
    )
    run.add_argument("--out", help="write the full JSON report here")
    run.add_argument(
        "--ci", action="store_true",
        help="exit nonzero on nondeterministic (unshrinkable), crash, "
             "or digest-divergence findings; detection gaps only report",
    )
    run.set_defaults(func=_cmd_run)

    shrink_cmd = commands.add_parser(
        "shrink", help="reduce a failing spec JSON to a minimal repro"
    )
    shrink_cmd.add_argument("--spec", required=True, help="spec JSON file")
    shrink_cmd.add_argument("--seed", type=int, default=0)
    shrink_cmd.add_argument("--shrink-attempts", type=int, default=150)
    shrink_cmd.add_argument("--no-divergence-check", action="store_true")
    shrink_cmd.add_argument("--out", help="default: <spec>.min")
    shrink_cmd.set_defaults(func=_cmd_shrink)

    corpus = commands.add_parser("corpus", help="corpus coverage stats")
    add_db(corpus)
    corpus.add_argument(
        "--failing", action="store_true",
        help="also list the failing entries",
    )
    corpus.set_defaults(func=_cmd_corpus)

    export = commands.add_parser(
        "export-scenario",
        help="write a corpus entry's spec JSON (by hash prefix)",
    )
    add_db(export)
    export.add_argument("--hash", required=True, help="spec-hash prefix")
    export.add_argument("--out", default="fuzz_scenario.json")
    export.set_defaults(func=_cmd_export_scenario)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
