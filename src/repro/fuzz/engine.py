"""The fuzz loop: sample → run → score → admit → shrink.

:class:`Fuzzer` drives the whole pipeline deterministically: given the
same :class:`FuzzConfig` (seed + candidate budget) it evaluates the
same candidates in the same order and produces byte-identical results —
the property the determinism gate test replays.  A wall-clock budget
(``budget_seconds``) may *additionally* stop the loop early for CI
time-boxing; runs compared for determinism must use the candidate
budget alone.

Candidate sourcing alternates between fresh grammar samples and
mutations of corpus frontier entries (coverage-guided search needs
both: samples for global reach, mutations to push past a frontier
entry's neighborhood).  Every failing candidate with a novel failure
signature is shrunk on the spot to a minimal deterministic repro.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.history import RunHistory
from ..scenarios.spec import spec_hash
from .corpus import Corpus, CorpusEntry
from .grammar import ScenarioGrammar
from .oracle import CandidateResult, evaluate_candidate
from .shrink import ShrinkResult, shrink

#: Every third candidate mutates a corpus entry (when one exists).
MUTATE_EVERY = 3


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz run's parameters (the determinism key)."""

    seed: int = 0
    #: Evaluate at most this many candidates.
    candidates: int = 50
    #: Optional wall-clock cap in seconds (CI time-boxing).  Checked
    #: between candidates; None means the candidate budget alone rules.
    budget_seconds: Optional[float] = None
    #: Campaign seed used for every candidate run.
    campaign_seed: int = 0
    #: Also run each candidate 2-shard inline and compare digests.
    check_divergence: bool = True
    #: Cap on shrink probes per novel failure signature.
    shrink_attempts: int = 150


@dataclass
class Finding:
    """One novel failure, shrunk to its minimal deterministic repro."""

    index: int
    original: CandidateResult
    shrunk: ShrinkResult

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "verdict": self.original.verdict.kind,
            "signature": list(self.original.verdict.signature),
            "detail": self.original.verdict.detail,
            "original_members": self.original.spec.members,
            "shrunk_members": self.shrunk.spec.members,
            "shrunk_duration": self.shrunk.spec.duration,
            "shrink_attempts": self.shrunk.attempts,
            "spec_hash": spec_hash(self.shrunk.spec),
            "spec": self.shrunk.spec.to_json(),
        }


@dataclass
class FuzzReport:
    """Everything one fuzz run produced (JSON-friendly via as_dict)."""

    config: FuzzConfig
    evaluated: int = 0
    admitted: List[CorpusEntry] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    coverage_keys: int = 0
    coverage_by_layer: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    stopped_by: str = "candidates"

    @property
    def candidates_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.evaluated / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "campaign_seed": self.config.campaign_seed,
            "candidates": self.config.candidates,
            "evaluated": self.evaluated,
            "stopped_by": self.stopped_by,
            "admitted": [entry.as_dict() for entry in self.admitted],
            "findings": [finding.as_dict() for finding in self.findings],
            "coverage_keys": self.coverage_keys,
            "coverage_by_layer": dict(self.coverage_by_layer),
            "wall_seconds": self.wall_seconds,
            "candidates_per_sec": self.candidates_per_sec,
        }

    def determinism_witness(self) -> Dict[str, Any]:
        """The run's deterministic core: everything except wall-clock.

        Two runs of the same :class:`FuzzConfig` (candidate-budget
        stop) must agree on this dict exactly — the determinism gate
        compares these witnesses.
        """
        return {
            "evaluated": self.evaluated,
            "admitted": [entry.as_dict() for entry in self.admitted],
            "findings": [finding.as_dict() for finding in self.findings],
            "coverage_keys": self.coverage_keys,
            "coverage_by_layer": dict(self.coverage_by_layer),
        }


class Fuzzer:
    """Coverage-guided scenario fuzzing over the campaign surface."""

    def __init__(
        self,
        config: FuzzConfig,
        corpus: Optional[Corpus] = None,
        history: Optional[RunHistory] = None,
    ) -> None:
        self.config = config
        self.grammar = ScenarioGrammar(config.seed)
        self.corpus = corpus if corpus is not None else Corpus()
        self.history = history

    # ------------------------------------------------------------------
    def _next_spec(self, index: int):
        """Sample or mutate, deterministically by index."""
        frontier = self.corpus.entries
        if frontier and index % MUTATE_EVERY == MUTATE_EVERY - 1:
            parent = frontier[index % len(frontier)]
            return self.grammar.mutate(parent.spec, index), "mutate"
        return self.grammar.sample(index), "sample"

    def run(self) -> FuzzReport:
        config = self.config
        report = FuzzReport(config=config)
        start = wallclock.perf_counter()
        for index in range(config.candidates):
            if (
                config.budget_seconds is not None
                and wallclock.perf_counter() - start >= config.budget_seconds
            ):
                report.stopped_by = "budget"
                break
            spec, origin = self._next_spec(index)
            result = evaluate_candidate(
                spec,
                config.campaign_seed,
                check_divergence=config.check_divergence,
            )
            report.evaluated += 1
            novel_failure = (
                result.failing
                and result.verdict.signature not in self.corpus.signatures
            )
            entry = self.corpus.consider(result, origin)
            if entry is not None:
                report.admitted.append(entry)
            if novel_failure:
                shrunk = shrink(
                    result, max_attempts=config.shrink_attempts
                )
                report.findings.append(
                    Finding(index=index, original=result, shrunk=shrunk)
                )
        report.wall_seconds = wallclock.perf_counter() - start
        report.coverage_keys = len(self.corpus.coverage)
        report.coverage_by_layer = self.corpus.coverage.by_layer()
        if self.history is not None and report.admitted:
            self.corpus.persist(self.history, report.admitted)
        return report
