"""Offline approximation of the CI ruff rules (see pyproject.toml).

The CI ``lint`` lane runs real ``ruff check`` (pinned in
requirements-dev.txt).  Development containers for this repo have no
network access and no ruff wheel, so this script re-implements the
selected rule families over the AST — close enough to catch the
violations the lane would, with zero dependencies:

* E401  multiple imports on one line
* E711  comparison to None with ``==`` / ``!=``
* E712  comparison to True / False with ``==`` / ``!=``
* E722  bare ``except:``
* E731  lambda assigned to a name
* E741  ambiguous variable names (``l``, ``O``, ``I``)
* E9    syntax / indentation errors (via ``compile``)
* F401  imported but unused (module scope; ``__all__`` re-exports and
        explicit ``as``-self aliases count as used)
* F403  ``from x import *``
* F541  f-string without placeholders
* F632  ``is`` comparison against a literal
* F811  redefinition of an unused import
* F841  local variable assigned but never used (simple, per-function)
* F-821-lite  names loaded but never bound anywhere in the module
        (whole-file binding set: under-reports by design, so scoping
        subtleties cannot produce false positives)

Usage: ``python tools/lint_fallback.py [paths...]`` (default: src,
tests, benchmarks).  Exits nonzero on any finding.  ``# noqa`` on the
offending line suppresses it, same as ruff.
"""

from __future__ import annotations

import ast
import builtins
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")

Finding = Tuple[str, int, str, str]  # path, line, code, message


def iter_py_files(paths: List[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def _noqa_lines(source: str) -> Set[int]:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "# noqa" in line
    }


class _ModuleNames(ast.NodeVisitor):
    """Whole-file name accounting for the F-rule approximations."""

    def __init__(self) -> None:
        self.bound: Set[str] = set()
        self.loaded: Set[str] = set()
        self.star_import = False

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded.add(node.id)
        else:
            self.bound.add(node.id)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*":
                self.star_import = True
            else:
                self.bound.add(alias.asname or alias.name)

    def _bind_function(self, node) -> None:
        self.bound.add(node.name)
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.bound.add(arg.arg)
        self.generic_visit(node)

    visit_FunctionDef = _bind_function
    visit_AsyncFunctionDef = _bind_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.bound.add(arg.arg)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.bound.add(node.name)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.bound.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.bound.update(node.names)


def _module_all(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


def _check_unused_imports(
    tree: ast.Module, names: _ModuleNames, path: str
) -> List[Finding]:
    findings: List[Finding] = []
    exported = _module_all(tree)
    seen_first: dict = {}
    # F811 only compares module-level imports: a function-local import
    # shadowing a module-level one is a different scope, not a
    # redefinition (matching ruff/pyflakes semantics).
    module_level = set()
    stack = list(tree.body)
    while stack:
        statement = stack.pop()
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            module_level.add(id(statement))
        elif isinstance(statement, (ast.If, ast.Try)):
            for body in (
                getattr(statement, "body", []),
                getattr(statement, "orelse", []),
                getattr(statement, "finalbody", []),
            ):
                stack.extend(body)
            for handler in getattr(statement, "handlers", []):
                stack.extend(handler.body)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            aliases = [
                (alias, (alias.asname or alias.name).split(".")[0])
                for alias in node.names
            ]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            aliases = [
                (alias, alias.asname or alias.name)
                for alias in node.names
                if alias.name != "*"
            ]
        else:
            continue
        for alias, binding in aliases:
            redundant_alias = alias.asname is not None and (
                alias.asname == alias.name
            )
            used = (
                binding in names.loaded
                or binding in exported
                or binding == "__future__"
                or redundant_alias  # explicit re-export idiom
                or names.star_import
            )
            if not used:
                findings.append((
                    path, node.lineno, "F401",
                    f"{binding!r} imported but unused",
                ))
            if id(node) not in module_level:
                continue
            if binding in seen_first and binding not in names.loaded:
                pass  # already reported as unused above
            elif binding in seen_first:
                first = seen_first[binding]
                if first != node.lineno:
                    findings.append((
                        path, node.lineno, "F811",
                        f"redefinition of {binding!r} from line {first}",
                    ))
            else:
                seen_first[binding] = node.lineno
    return findings


class _FunctionLocals(ast.NodeVisitor):
    """F841: simple assigned-but-unused locals, one function at a time."""

    def __init__(self) -> None:
        self.findings: List[Tuple[int, str]] = []

    def _scan_function(self, node) -> None:
        assigned: dict = {}
        loaded: Set[str] = set()
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                # Nested scopes may close over anything: count every
                # name they mention as a use.
                for inner in ast.walk(child):
                    if isinstance(inner, ast.Name):
                        loaded.add(inner.id)
                continue
            if isinstance(child, ast.Name):
                if isinstance(child.ctx, ast.Load):
                    loaded.add(child.id)
                elif isinstance(child.ctx, ast.Store) and isinstance(
                    child.parent_stmt, ast.Assign
                ):
                    assigned.setdefault(child.id, child.lineno)
        for name, lineno in sorted(assigned.items(), key=lambda kv: kv[1]):
            if name not in loaded and not name.startswith("_"):
                self.findings.append((lineno, name))
        self.generic_visit(node)

    visit_FunctionDef = _scan_function
    visit_AsyncFunctionDef = _scan_function


def _annotate_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            for child in ast.walk(node):
                if isinstance(child, ast.Name):
                    child.parent_stmt = getattr(
                        child, "parent_stmt", node
                    )


def check_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    name = str(path)
    try:
        tree = ast.parse(source, filename=name)
        compile(source, name, "exec")
    except SyntaxError as exc:
        return [(name, exc.lineno or 0, "E9", f"syntax error: {exc.msg}")]
    noqa = _noqa_lines(source)
    findings: List[Finding] = []

    names = _ModuleNames()
    names.visit(tree)
    findings.extend(_check_unused_imports(tree, names, name))

    if not names.star_import:
        known = names.bound | set(dir(builtins)) | {
            "__file__", "__name__", "__doc__", "__package__", "__spec__",
            "__builtins__", "__debug__", "__loader__", "__path__",
        }
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ) and node.id not in known:
                findings.append((
                    name, node.lineno, "F821",
                    f"undefined name {node.id!r}",
                ))

    _annotate_parents(tree)
    locals_check = _FunctionLocals()
    locals_check.visit(tree)
    for lineno, local in locals_check.findings:
        findings.append((
            name, lineno, "F841",
            f"local variable {local!r} is assigned to but never used",
        ))

    # Format specs ({x:<28}) parse as nested placeholder-less
    # JoinedStrs; they are not f-strings the user wrote.
    format_specs = {
        id(node.format_spec)
        for node in ast.walk(tree)
        if isinstance(node, ast.FormattedValue)
        and node.format_spec is not None
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and len(node.names) > 1:
            findings.append((
                name, node.lineno, "E401", "multiple imports on one line",
            ))
        elif isinstance(node, ast.ImportFrom) and any(
            alias.name == "*" for alias in node.names
        ):
            findings.append((
                name, node.lineno, "F403", "star import",
            ))
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                literal_none = (
                    isinstance(comparator, ast.Constant)
                    and comparator.value is None
                )
                literal_bool = (
                    isinstance(comparator, ast.Constant)
                    and isinstance(comparator.value, bool)
                )
                if isinstance(op, (ast.Eq, ast.NotEq)) and literal_none:
                    findings.append((
                        name, node.lineno, "E711",
                        "comparison to None should be 'is None'",
                    ))
                if isinstance(op, (ast.Eq, ast.NotEq)) and literal_bool:
                    findings.append((
                        name, node.lineno, "E712",
                        "comparison to True/False should be 'is'",
                    ))
                if isinstance(op, (ast.Is, ast.IsNot)) and isinstance(
                    comparator, ast.Constant
                ) and isinstance(comparator.value, (str, int, float,
                                                    tuple, bytes)) \
                        and not isinstance(comparator.value, bool) \
                        and comparator.value is not None:
                    findings.append((
                        name, node.lineno, "F632",
                        "'is' comparison against a literal",
                    ))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append((name, node.lineno, "E722", "bare except"))
        elif isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Lambda
        ) and any(isinstance(target, ast.Name) for target in node.targets):
            # ruff's E731 only fires on plain-name targets, not attributes.
            findings.append((
                name, node.lineno, "E731",
                "lambda assigned to a name (use def)",
            ))
        elif isinstance(node, ast.JoinedStr) and id(
            node
        ) not in format_specs and not any(
            isinstance(part, ast.FormattedValue) for part in node.values
        ):
            findings.append((
                name, node.lineno, "F541", "f-string without placeholders",
            ))
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, ast.Store
        ) and node.id in {"l", "O", "I"}:
            findings.append((
                name, node.lineno, "E741",
                f"ambiguous variable name {node.id!r}",
            ))
    return [f for f in findings if f[1] not in noqa]


def main(argv: List[str]) -> int:
    paths = argv or [p for p in DEFAULT_PATHS if Path(p).exists()]
    findings: List[Finding] = []
    files = 0
    for path in iter_py_files(paths):
        files += 1
        findings.extend(check_file(path))
    findings.sort()
    for file_name, lineno, code, message in findings:
        print(f"{file_name}:{lineno}: {code} {message}")
    print(
        f"checked {files} files: "
        f"{len(findings)} finding(s)" if findings else
        f"checked {files} files: clean"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
